//! Random (Erdős–Rényi) dual graphs.

use rand::Rng;

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::properties;
use crate::Result;

/// Samples an Erdős–Rényi graph `G(n, p)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use dradio_graphs::topology;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let g = topology::gnp(20, 0.3, &mut rng)?;
/// assert_eq!(g.len(), 20);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let mut g = Graph::empty(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::new(i), NodeId::new(j))?;
            }
        }
    }
    Ok(g)
}

/// Samples a random dual graph: the reliable layer is `G(n, p_reliable)`
/// re-sampled until connected (at most 200 attempts), and every absent pair
/// is added to `G'` independently with probability `p_dynamic`.
///
/// This family models "unstructured" unreliability and is used as a
/// non-geographic workload in the oblivious global broadcast experiments.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] if a probability is out of range or
///   `n == 0`.
/// * [`GraphError::Disconnected`] if no connected reliable layer was sampled
///   within the attempt budget (choose a larger `p_reliable`).
pub fn erdos_renyi_dual<R: Rng + ?Sized>(
    n: usize,
    p_reliable: f64,
    p_dynamic: f64,
    rng: &mut R,
) -> Result<DualGraph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "n must be >= 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&p_dynamic) {
        return Err(GraphError::InvalidParameter {
            reason: format!("dynamic edge probability must be in [0, 1], got {p_dynamic}"),
        });
    }
    let mut g = None;
    for _ in 0..200 {
        let candidate = gnp(n, p_reliable, rng)?;
        if properties::is_connected(&candidate) {
            g = Some(candidate);
            break;
        }
    }
    let g = g.ok_or(GraphError::Disconnected)?;
    let mut g_prime = g.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let (u, v) = (NodeId::new(i), NodeId::new(j));
            if !g_prime.has_edge(u, v) && rng.gen_bool(p_dynamic) {
                g_prime.add_edge(u, v)?;
            }
        }
    }
    DualGraph::new(g, g_prime).map(|d| {
        d.with_name(format!(
            "erdos-renyi(n={n}, p={p_reliable:.2}, q={p_dynamic:.2})"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let empty = gnp(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn gnp_is_deterministic_for_fixed_seed() {
        let a = gnp(30, 0.2, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        let b = gnp(30, 0.2, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_dual_is_valid_and_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dual = erdos_renyi_dual(40, 0.2, 0.1, &mut rng).unwrap();
        assert!(dual.is_valid());
        assert!(properties::is_connected(dual.g()));
        assert_eq!(dual.len(), 40);
    }

    #[test]
    fn erdos_renyi_dual_adds_dynamic_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let dual = erdos_renyi_dual(30, 0.3, 0.5, &mut rng).unwrap();
        assert!(!dual.dynamic_edges().is_empty());
    }

    #[test]
    fn erdos_renyi_dual_rejects_bad_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(erdos_renyi_dual(0, 0.5, 0.5, &mut rng).is_err());
        assert!(erdos_renyi_dual(10, 0.5, 1.5, &mut rng).is_err());
        // Extremely sparse reliable layer on a large graph: likely to fail to
        // connect, which must surface as an error rather than a panic.
        assert!(matches!(
            erdos_renyi_dual(200, 0.0, 0.1, &mut rng),
            Err(GraphError::Disconnected) | Ok(_)
        ));
    }

    #[test]
    fn zero_dynamic_probability_gives_static_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dual = erdos_renyi_dual(25, 0.4, 0.0, &mut rng).unwrap();
        assert!(dual.is_static());
    }
}
