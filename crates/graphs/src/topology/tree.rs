//! Balanced tree topologies.

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// A static complete `branching`-ary tree of the given `depth` (depth 0 is a
/// single root).
///
/// Trees give logarithmic diameter with controllable degree, a useful middle
/// point between cliques (constant diameter) and lines (linear diameter) for
/// the global broadcast scaling experiments.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `branching == 0` or if the
/// requested tree would exceed `2^22` nodes (guards against accidental
/// exponential blow-up in sweeps).
///
/// # Example
///
/// ```
/// use dradio_graphs::{properties, topology};
/// let dual = topology::balanced_tree(2, 3)?;
/// assert_eq!(dual.len(), 15); // 1 + 2 + 4 + 8
/// assert_eq!(properties::diameter(dual.g())?, 6);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn balanced_tree(branching: usize, depth: usize) -> Result<DualGraph> {
    if branching == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "balanced_tree requires branching >= 1".into(),
        });
    }
    // Count nodes: sum_{d=0..=depth} branching^d, with an overflow guard.
    let mut n: usize = 0;
    let mut level: usize = 1;
    for _ in 0..=depth {
        n = n
            .checked_add(level)
            .ok_or_else(|| GraphError::InvalidParameter {
                reason: "tree too large".into(),
            })?;
        level = level.saturating_mul(branching);
        if n > (1 << 22) {
            return Err(GraphError::InvalidParameter {
                reason: format!("tree with branching {branching} and depth {depth} is too large"),
            });
        }
    }
    let mut g = Graph::empty(n);
    // Parent of node i (i >= 1) in a complete branching-ary tree laid out in
    // BFS order is (i - 1) / branching.
    for i in 1..n {
        let parent = (i - 1) / branching;
        g.add_edge(NodeId::new(parent), NodeId::new(i))?;
    }
    Ok(DualGraph::static_model(g).with_name(format!("tree(b={branching}, d={depth})")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn binary_tree_counts() {
        let d = balanced_tree(2, 3).unwrap();
        assert_eq!(d.len(), 15);
        assert_eq!(d.g().edge_count(), 14);
        assert!(properties::is_connected(d.g()));
    }

    #[test]
    fn depth_zero_is_single_node() {
        let d = balanced_tree(3, 0).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.g().edge_count(), 0);
    }

    #[test]
    fn unary_tree_is_a_path() {
        let d = balanced_tree(1, 5).unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(properties::diameter(d.g()).unwrap(), 5);
    }

    #[test]
    fn root_degree_equals_branching() {
        let d = balanced_tree(4, 2).unwrap();
        assert_eq!(d.g().degree(NodeId::new(0)), 4);
        // Internal nodes have branching + 1 neighbors.
        assert_eq!(d.g().degree(NodeId::new(1)), 5);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(balanced_tree(0, 3).is_err());
        assert!(balanced_tree(2, 40).is_err());
    }
}
