//! Property-based tests for the graph substrate.

use dradio_graphs::properties;
use dradio_graphs::topology::{self, GeometricConfig};
use dradio_graphs::{DualGraph, Graph, NodeId, RegionDecomposition};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy producing a small random graph as (n, list of index pairs).
fn arb_edge_list() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..60);
        (Just(n), edges)
    })
}

fn build_graph(n: usize, pairs: &[(usize, usize)]) -> Graph {
    let mut g = Graph::empty(n);
    for &(u, v) in pairs {
        if u != v {
            let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    g
}

proptest! {
    /// Adjacency is always symmetric and degree sums equal twice the edge count.
    #[test]
    fn handshake_lemma((n, pairs) in arb_edge_list()) {
        let g = build_graph(n, &pairs);
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
                prop_assert!(g.neighbors(v).contains(&u));
            }
        }
    }

    /// Edge enumeration agrees with membership queries.
    #[test]
    fn edges_match_membership((n, pairs) in arb_edge_list()) {
        let g = build_graph(n, &pairs);
        let edges = g.edges();
        prop_assert_eq!(edges.len(), g.edge_count());
        for e in &edges {
            let (u, v) = e.endpoints();
            prop_assert!(g.has_edge(u, v));
            prop_assert!(u < v);
        }
    }

    /// Removing every edge returns the graph to the empty state.
    #[test]
    fn remove_all_edges_empties_graph((n, pairs) in arb_edge_list()) {
        let mut g = build_graph(n, &pairs);
        for e in g.edges() {
            let (u, v) = e.endpoints();
            prop_assert!(g.remove_edge(u, v).unwrap());
        }
        prop_assert_eq!(g.edge_count(), 0);
        for u in g.nodes() {
            prop_assert_eq!(g.degree(u), 0);
        }
    }

    /// A graph unioned with itself is unchanged, and union is an upper bound
    /// of both operands.
    #[test]
    fn union_properties((n, pairs) in arb_edge_list(), (m, other_pairs) in arb_edge_list()) {
        let a = build_graph(n, &pairs);
        let self_union = a.union(&a).unwrap();
        prop_assert_eq!(self_union.edge_count(), a.edge_count());
        if n == m {
            let b = build_graph(m, &other_pairs);
            let u = a.union(&b).unwrap();
            prop_assert!(a.is_subgraph_of(&u));
            prop_assert!(b.is_subgraph_of(&u));
        }
    }

    /// BFS distances satisfy the triangle-ish property along edges: distances
    /// of adjacent nodes differ by at most 1.
    #[test]
    fn bfs_distances_are_lipschitz((n, pairs) in arb_edge_list()) {
        let g = build_graph(n, &pairs);
        let dist = properties::bfs_distances(&g, NodeId::new(0));
        for e in g.edges() {
            let (u, v) = e.endpoints();
            if let (Some(du), Some(dv)) = (dist[u.index()], dist[v.index()]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // If one endpoint is reachable the other must be too.
                prop_assert!(dist[u.index()].is_none() && dist[v.index()].is_none());
            }
        }
    }

    /// Connected components partition the vertex set.
    #[test]
    fn components_partition((n, pairs) in arb_edge_list()) {
        let g = build_graph(n, &pairs);
        let comps = properties::connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        let mut seen = vec![false; n];
        for comp in &comps {
            for u in comp {
                prop_assert!(!seen[u.index()]);
                seen[u.index()] = true;
            }
        }
    }

    /// Dual clique construction is valid for all even sizes and the dynamic
    /// edge count matches the closed form.
    #[test]
    fn dual_clique_invariants(half in 2usize..40) {
        let n = 2 * half;
        let dual = topology::dual_clique(n).unwrap();
        prop_assert!(dual.is_valid());
        prop_assert_eq!(dual.len(), n);
        // G edges: two cliques plus the bridge.
        let clique_edges = half * (half - 1) / 2;
        prop_assert_eq!(dual.g().edge_count(), 2 * clique_edges + 1);
        // G' is complete.
        prop_assert_eq!(dual.g_prime().edge_count(), n * (n - 1) / 2);
        prop_assert_eq!(dual.dynamic_edges().len(), n * (n - 1) / 2 - 2 * clique_edges - 1);
    }

    /// Bracelet construction is valid and its reliable layer is connected.
    #[test]
    fn bracelet_invariants(k in 2usize..8) {
        let b = topology::bracelet(k).unwrap();
        prop_assert_eq!(b.len(), 2 * k * k);
        prop_assert!(b.dual().is_valid());
        prop_assert!(properties::is_connected(b.dual().g()));
        prop_assert_eq!(b.heads_a().len(), k);
        prop_assert_eq!(b.heads_b().len(), k);
    }

    /// Random geometric graphs always satisfy the geographic constraint and
    /// region decompositions cover every node exactly once.
    #[test]
    fn geometric_constraint_and_regions(seed in 0u64..50, n in 20usize..60) {
        let r = 1.5;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cfg = GeometricConfig::new(n, 3.5, r);
        let dual: DualGraph = match topology::random_geometric(&cfg, &mut rng) {
            Ok(d) => d,
            Err(_) => return Ok(()), // sparse sample failed to connect; nothing to check
        };
        prop_assert!(dual.satisfies_geographic_constraint(r).unwrap());
        let rd = RegionDecomposition::build(&dual, r).unwrap();
        prop_assert_eq!(rd.node_count(), n);
        let total: usize = rd.regions().map(|reg| rd.members(reg).len()).sum();
        prop_assert_eq!(total, n);
        prop_assert!(rd.max_region_neighbors() <= RegionDecomposition::gamma_bound(r));
    }

    /// Line-of-cliques diameter grows linearly with the number of cliques.
    #[test]
    fn line_of_cliques_diameter(cliques in 1usize..10, size in 1usize..6) {
        let dual = topology::line_of_cliques(cliques, size).unwrap();
        let d = properties::diameter(dual.g()).unwrap();
        if size == 1 {
            prop_assert_eq!(d, cliques - 1);
        } else {
            prop_assert!(d + 1 >= cliques);
            prop_assert!(d <= 2 * cliques);
        }
    }
}
