//! The workspace driver: file discovery, rule dispatch, and rendering.
//!
//! The walk is deliberately deterministic — directories are read, sorted,
//! and visited in lexicographic order — so the diagnostic stream is
//! byte-stable across runs and machines (the lint holds itself to the
//! invariants it checks).

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed};
use crate::registry;
use crate::rules::{check_file, FileContext, Finding};

/// Repo-relative path of the serde-stability registry.
pub const REGISTRY_PATH: &str = "crates/lint/serde_pins.txt";

/// A fatal driver error (bad root, unreadable file) — distinct from lint
/// findings, and mapped to exit code 2 by the CLI.
#[derive(Debug)]
pub struct DriverError(pub String);

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DriverError {}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// `(repo-relative path, finding)` pairs, sorted by path then position.
    pub findings: Vec<(String, Finding)>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders rustc-style diagnostics, one block per finding.
    pub fn render(&self, fix_hints: bool) -> String {
        let mut out = String::new();
        for (path, f) in &self.findings {
            out.push_str(&format!(
                "{path}:{}:{}: [{} {}] {}\n",
                f.line, f.col, f.rule, f.name, f.message
            ));
            if fix_hints {
                out.push_str(&format!("  hint: {}\n", f.hint));
            }
        }
        let noun = if self.findings.len() == 1 {
            "finding"
        } else {
            "findings"
        };
        out.push_str(&format!(
            "dradio-lint: {} {noun} across {} files\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }
}

/// Runs the full pass over the workspace rooted at `root` (must contain a
/// `crates/` directory).
pub fn run_check(root: &Path) -> Result<LintReport, DriverError> {
    if !root.join("crates").is_dir() {
        return Err(DriverError(format!(
            "{} is not the workspace root (no crates/ directory); run from the repo root \
             or pass --root",
            root.display()
        )));
    }

    let files = workspace_sources(root)?;
    let mut lexed_files: Vec<(String, Lexed)> = Vec::with_capacity(files.len());
    for path in &files {
        let source = fs::read_to_string(path)
            .map_err(|e| DriverError(format!("reading {}: {e}", path.display())))?;
        lexed_files.push((relative(root, path), lex(&source)));
    }

    let mut report = LintReport {
        files_scanned: lexed_files.len(),
        ..LintReport::default()
    };
    for (rel, lexed) in &lexed_files {
        let ctx = classify(rel);
        for finding in check_file(&ctx, lexed) {
            report.findings.push((rel.clone(), finding));
        }
    }

    // D5 needs the whole tree at once.
    let registry_file = root.join(REGISTRY_PATH);
    match fs::read_to_string(&registry_file) {
        Ok(content) => {
            let (entries, parse_findings) = registry::parse_registry(&content);
            for finding in parse_findings {
                report.findings.push((REGISTRY_PATH.to_string(), finding));
            }
            report.findings.extend(registry::check_registry(
                &entries,
                &lexed_files,
                REGISTRY_PATH,
            ));
        }
        Err(_) => report.findings.push((
            REGISTRY_PATH.to_string(),
            Finding {
                rule: "D5",
                name: "serde-stability-registry",
                line: 1,
                col: 1,
                message: "serde-stability registry is missing; every hand-written serde \
                          format must map to a pinned-bytes test"
                    .into(),
                hint: format!("create {REGISTRY_PATH} (see crates/lint/README note)"),
            },
        )),
    }

    report.findings.sort_by(|a, b| {
        (a.0.as_str(), a.1.line, a.1.col, a.1.rule).cmp(&(
            b.0.as_str(),
            b.1.line,
            b.1.col,
            b.1.rule,
        ))
    });
    Ok(report)
}

/// Every `.rs` source under `src/` (facade) and `crates/*/src/`, sorted.
/// Integration tests (`crates/*/tests/`) and the lint's own fixtures are
/// outside `src/` and therefore never walked; shims are not workspace code.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, DriverError> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files)?;
    }
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| DriverError(format!("reading {}: {e}", crates_dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), DriverError> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| DriverError(format!("reading {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Forward slashes keep diagnostics byte-identical across platforms.
    rel.to_string_lossy().replace('\\', "/")
}

/// Derives the rule-scoping context from a repo-relative path.
fn classify(rel: &str) -> FileContext {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("facade")
        .to_string();
    let is_lib_root = rel.ends_with("src/lib.rs") || rel == "src/lib.rs";
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("src/main.rs");
    FileContext {
        crate_name,
        is_lib_root,
        is_bin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        let facade = classify("src/lib.rs");
        assert_eq!(facade.crate_name, "facade");
        assert!(facade.is_lib_root && !facade.is_bin);

        let module = classify("crates/campaign/src/store.rs");
        assert_eq!(module.crate_name, "campaign");
        assert!(!module.is_lib_root && !module.is_bin);

        let bin = classify("crates/bench/src/bin/repro.rs");
        assert_eq!(bin.crate_name, "bench");
        assert!(bin.is_bin);

        let lint_main = classify("crates/lint/src/main.rs");
        assert!(lint_main.is_bin);
        assert!(classify("crates/sim/src/lib.rs").is_lib_root);
    }

    #[test]
    fn render_is_stable_and_mentions_totals() {
        let report = LintReport {
            findings: vec![(
                "crates/sim/src/engine.rs".to_string(),
                Finding {
                    rule: "D4",
                    name: "panic-freedom",
                    line: 7,
                    col: 3,
                    message: "msg".into(),
                    hint: "do better".into(),
                },
            )],
            files_scanned: 3,
        };
        let plain = report.render(false);
        assert!(plain.contains("crates/sim/src/engine.rs:7:3: [D4 panic-freedom] msg"));
        assert!(plain.contains("1 finding across 3 files"));
        assert!(!plain.contains("hint:"));
        assert!(report.render(true).contains("  hint: do better"));
    }

    #[test]
    fn missing_root_is_a_driver_error_not_a_finding() {
        let err = run_check(Path::new("/nonexistent-dradio-root"));
        assert!(err.is_err());
    }
}
