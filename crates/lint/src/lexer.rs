//! A hand-rolled Rust lexer — just enough of the language to lint with.
//!
//! The environment this workspace builds in has no crates.io access, so
//! `syn` is unavailable; the rules in [`crate::rules`] only ever need a
//! *token* view of a file anyway. The lexer handles the parts of Rust's
//! lexical grammar that would otherwise produce false positives:
//!
//! * string literals (plain, byte, raw with any `#` depth) — so the word
//!   `HashMap` inside a diagnostic message is not an identifier;
//! * nested block comments and line comments — comments are kept (with
//!   positions) because suppression markers live in them;
//! * lifetimes vs. char literals (`'a` vs `'a'` vs `'\n'`);
//! * raw identifiers (`r#type`) without confusing them with raw strings
//!   (`r#"..."#`).
//!
//! Everything else (numbers, punctuation) is tokenized coarsely: the rules
//! match identifier/punctuation sequences and never inspect literals.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, unprefixed).
    Ident,
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A string literal of any flavor (`"..."`, `b"..."`, `r#"..."#`).
    StrLit,
    /// A numeric literal.
    NumLit,
    /// A single punctuation character (`.`, `:`, `!`, `(`, …).
    Punct,
}

/// One code token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::StrLit`], the raw source slice).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// One comment (line or block) with its position and surroundings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment body *without* the `//`, `///`, `//!` or `/* */` fence.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column the comment starts at.
    pub col: u32,
    /// Whether any code token precedes the comment on its starting line
    /// (a *trailing* comment annotates its own line; a standalone comment
    /// annotates the line below).
    pub trailing: bool,
}

/// The lexed form of one source file: code tokens and comments, each with
/// positions.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. The lexer never fails: unterminated constructs are
/// consumed to end of input (the compiler is the authority on validity; the
/// lint only needs positions to be right for code that compiles).
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Whether a code token has been produced on the current line.
    code_on_line: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            code_on_line: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters. Multi-byte
    /// UTF-8 continuation bytes do not advance the column, so columns count
    /// characters, not bytes.
    fn bump(&mut self) {
        if let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
                self.code_on_line = false;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line, col),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line, col),
                b'r' | b'b' if self.raw_or_byte_string(line, col) => {}
                b'\'' => self.lifetime_or_char(line, col),
                b'"' => self.string(line, col, 0),
                b'0'..=b'9' => self.number(line, col),
                b if is_ident_start(b) => self.ident(line, col),
                _ => {
                    self.push_token(TokenKind::Punct, (b as char).to_string(), line, col);
                    self.bump();
                }
            }
        }
        self.out
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.code_on_line = true;
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let trailing = self.code_on_line;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let body = &self.src[start..self.pos];
        // Strip the fence: `//`, `///`, `//!` all start with `//`.
        let mut text = String::from_utf8_lossy(body).into_owned();
        text.drain(..2);
        self.out.comments.push(Comment {
            text,
            line,
            col,
            trailing,
        });
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let trailing = self.code_on_line;
        let start = self.pos;
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        let body = &self.src[start..self.pos];
        let mut text = String::from_utf8_lossy(body).into_owned();
        text.drain(..2.min(text.len()));
        for _ in 0..2 {
            if text.ends_with('/') || text.ends_with('*') {
                text.pop();
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            col,
            trailing,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw
    /// identifiers `r#ident`. Returns `false` if the `r`/`b` is an ordinary
    /// identifier start (the caller then lexes it as one).
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let b0 = self.peek(0);
        let (prefix_len, rest) = match (b0, self.peek(1)) {
            (Some(b'r'), Some(b'"')) => (1, b'"'),
            (Some(b'r'), Some(b'#')) => {
                // Raw string `r#…"` vs raw identifier `r#ident`: scan the
                // run of `#`s; a quote means raw string.
                let mut k = 1;
                while self.peek(k) == Some(b'#') {
                    k += 1;
                }
                if self.peek(k) == Some(b'"') {
                    (1, b'#')
                } else {
                    // Raw identifier: consume `r#` and lex the identifier,
                    // recording it *without* the prefix so rules match it
                    // like any other name.
                    self.bump_n(2);
                    let start = self.pos;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push_token(TokenKind::Ident, text, line, col);
                    return true;
                }
            }
            (Some(b'b'), Some(b'"')) => (1, b'"'),
            (Some(b'b'), Some(b'\'')) => {
                self.bump(); // the `b`; char() consumes the quote onwards
                self.char_literal(line, col);
                return true;
            }
            (Some(b'b'), Some(b'r')) if matches!(self.peek(2), Some(b'"') | Some(b'#')) => (
                2,
                if self.peek(2) == Some(b'"') {
                    b'"'
                } else {
                    b'#'
                },
            ),
            _ => return false,
        };
        self.bump_n(prefix_len);
        if rest == b'#' {
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.bump();
            }
            self.string(line, col, hashes);
        } else {
            // `r"…"` / `b"…"`: raw (no escapes) only for the `r` forms.
            let raw = self.src[self.pos - prefix_len] == b'r' || prefix_len == 2;
            if raw {
                self.string_raw_body(line, col, 0);
            } else {
                self.string(line, col, 0);
            }
        }
        true
    }

    /// Lexes a string starting at the opening quote. `hashes > 0` means a
    /// raw string closed by `"` followed by that many `#`.
    fn string(&mut self, line: u32, col: u32, hashes: usize) {
        if hashes > 0 {
            self.string_raw_body(line, col, hashes);
            return;
        }
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_token(TokenKind::StrLit, text, line, col);
    }

    /// The body of a raw string: from the opening quote to `"` + `hashes`
    /// `#`s, no escape processing.
    fn string_raw_body(&mut self, line: u32, col: u32, hashes: usize) {
        let start = self.pos;
        self.bump(); // opening quote
        'scan: while let Some(b) = self.peek(0) {
            if b == b'"' {
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_token(TokenKind::StrLit, text, line, col);
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        // `'` then ident-start: lifetime unless the ident run is one char
        // long and followed by a closing `'` (then it is a char literal).
        if self.peek(1).is_some_and(is_ident_start) {
            let mut k = 2;
            while self.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if !(k == 2 && self.peek(2) == Some(b'\'')) {
                // Lifetime: consume `'` + identifier.
                self.bump();
                let start = self.pos;
                self.bump_n(k - 1);
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push_token(TokenKind::Lifetime, text, line, col);
                return;
            }
        }
        self.char_literal(line, col);
    }

    /// A char literal starting at the opening `'` (escapes included).
    fn char_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // opening quote
        match self.peek(0) {
            Some(b'\\') => {
                self.bump_n(2);
                // `\u{…}` and multi-char escapes: consume to the close quote.
                while self.peek(0).is_some() && self.peek(0) != Some(b'\'') {
                    self.bump();
                }
            }
            Some(_) => self.bump(),
            None => {}
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_token(TokenKind::CharLit, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else if b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_token(TokenKind::NumLit, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push_token(TokenKind::Ident, text, line, col);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn words_in_strings_are_not_identifiers() {
        let src = r#"let msg = "HashMap inside a string"; let m = HashMap::new();"#;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
        assert!(ids.contains(&"msg".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let src = r##"let s = r#"quote " and HashMap stay inside"#; let t = s;"##;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap"));
        assert!(!idents(src).contains(&"HashMap".to_string()));
        // Lexing continues correctly after the raw string.
        assert!(idents(src).contains(&"t".to_string()));
    }

    #[test]
    fn raw_strings_without_hashes_and_byte_strings() {
        let src = r##"let a = r"no escapes \"; let b = b"bytes"; let c = br#"raw bytes"#;"##;
        let lexed = lex(src);
        let strs = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn raw_identifiers_are_plain_identifiers() {
        let ids = idents("let r#type = 1; let x = r#type;");
        assert_eq!(ids.iter().filter(|i| *i == "type").count(), 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let after = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(idents(src).contains(&"after".to_string()));
        // An `Instant` inside a comment is not a code token.
        assert!(idents("/* Instant */ fn f() {}")
            .iter()
            .all(|i| i != "Instant"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, c: char) { let y: char = 'a'; let s = 'static; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        // `'static` here is written as a (nonsensical but lexable) lifetime.
        assert_eq!(lifetimes, ["a", "a", "static"]);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'a'"]);
    }

    #[test]
    fn escaped_char_literals_lex_as_one_token() {
        for src in ["let c = '\\n';", "let c = '\\'';", "let c = '\\u{1F600}';"] {
            let lexed = lex(src);
            assert_eq!(
                lexed
                    .tokens
                    .iter()
                    .filter(|t| t.kind == TokenKind::CharLit)
                    .count(),
                1,
                "{src}"
            );
        }
        let lexed = lex("let b = b'x';");
        assert_eq!(lexed.tokens.last().map(|t| t.kind), Some(TokenKind::Punct));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::CharLit));
    }

    #[test]
    fn comments_know_whether_they_trail_code() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let src = "fn main() {\n    let x = 1;\n}\n";
        let lexed = lex(src);
        let x = lexed.tokens.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let src = "for i in 0..n { let f = 1.5; }";
        let lexed = lex(src);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::NumLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "1.5"]);
    }
}
