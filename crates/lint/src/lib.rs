//! dradio-lint: the workspace determinism & invariant static-analysis pass.
//!
//! The dual-graph broadcast reproduction rests on invariants that rustc
//! cannot see: byte-reproducible stores, seed-pure trials, an
//! allocation-free round loop, and pinned serde formats. This crate checks
//! them statically — a hand-rolled lexer (no external parser), a marker
//! grammar for justified suppressions, and six rules (D1–D6) described in
//! [`rules`]. Run it as `cargo run -p dradio-lint -- check` or
//! `repro lint`; CI fails on any finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod lexer;
pub mod markers;
pub mod registry;
pub mod rules;

pub use driver::{run_check, DriverError, LintReport, REGISTRY_PATH};
pub use rules::{FileContext, Finding, DETERMINISM_CRATES};
