//! CLI for the workspace lint: `dradio-lint check [--root <dir>] [--fix-hints]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut fix_hints = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--fix-hints" => fix_hints = true,
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if command != Some("check") {
        return usage("missing command");
    }
    match dradio_lint::run_check(&root) {
        Ok(report) => {
            print!("{}", report.render(fix_hints));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("dradio-lint: error: {err}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
dradio-lint: workspace determinism & invariant static analysis

USAGE:
    dradio-lint check [--root <dir>] [--fix-hints]

RULES:
    D1 no-unordered-iteration     HashMap/HashSet in determinism crates
    D2 no-wall-clock-ambient-rng  Instant/SystemTime/thread_rng/rand::random
    D3 no-alloc-in-hot-path       allocation inside `lint: hot-path` regions
    D4 panic-freedom              unwrap/expect/panic!/todo! in library code
    D5 serde-stability-registry   hand-written serde must map to a pin test
    D6 crate-headers              unified #![forbid/warn] crate headers
    M1 marker-syntax              malformed suppression markers
    M2 unused-allow               suppressions that suppress nothing

Suppress with `// lint: allow(<rule>) -- <justification>` (own line or the
line below), `// lint: allow-file(<rule>) -- <justification>`, and mark hot
regions with `// lint: hot-path` ... `// lint: end-hot-path`.

Exit codes: 0 clean, 1 findings, 2 usage or I/O error.";

fn usage(problem: &str) -> ExitCode {
    eprintln!("dradio-lint: {problem}\n\n{USAGE}");
    ExitCode::from(2)
}
