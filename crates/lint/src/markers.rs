//! Suppression and region markers, parsed out of comments.
//!
//! Three marker forms, all spelled inside ordinary comments:
//!
//! * `// lint: allow(D4) -- <justification>` — suppresses the listed rule(s)
//!   on the marker's own line (trailing comment) or on the next code line
//!   below (standalone comment; intervening comment lines — e.g. a wrapped
//!   justification — are skipped). Several rules may be listed:
//!   `allow(D3, D4)`. The justification after ` -- ` is **mandatory**: a
//!   marker without one is itself a finding.
//! * `// lint: allow-file(D2) -- <justification>` — suppresses the rule(s)
//!   for the whole file.
//! * `// lint: hot-path` … `// lint: end-hot-path` — delimits a region the
//!   allocation rule (D3) applies *to* (everywhere else it is silent).
//!
//! Every `allow` marker must earn its keep: a marker that suppresses no
//! finding is reported (`unused-allow`), so stale suppressions cannot
//! accumulate.

use crate::lexer::Comment;

/// The scope of an allow marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// The marker's own line (trailing) or the line below (standalone).
    Line(u32),
    /// The entire file.
    File,
}

/// One parsed `allow` marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule identifiers this marker suppresses (e.g. `["D4"]`).
    pub rules: Vec<String>,
    /// Where the suppression applies.
    pub scope: AllowScope,
    /// The marker's own position (for `unused-allow` reporting).
    pub line: u32,
    /// The marker's column.
    pub col: u32,
}

/// A `hot-path` … `end-hot-path` region (1-based line range, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotRegion {
    /// First line of the region.
    pub start: u32,
    /// Last line of the region.
    pub end: u32,
}

/// A malformed marker (bad syntax, missing justification, unbalanced
/// region): reported as a finding by the driver.
#[derive(Debug, Clone)]
pub struct MarkerError {
    /// 1-based line of the offending marker.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// Everything marker-related found in one file.
#[derive(Debug, Default)]
pub struct Markers {
    /// Parsed allow markers.
    pub allows: Vec<Allow>,
    /// Hot-path regions.
    pub hot_regions: Vec<HotRegion>,
    /// Syntax/structure errors.
    pub errors: Vec<MarkerError>,
}

impl Markers {
    /// Extracts markers from a file's comments.
    pub fn parse(comments: &[Comment]) -> Markers {
        let mut markers = Markers::default();
        let mut open_hot: Option<u32> = None;
        // Lines holding standalone comments: a standalone allow skips over
        // them (wrapped justifications) to reach the code line it covers.
        let standalone_lines: std::collections::BTreeSet<u32> = comments
            .iter()
            .filter(|c| !c.trailing)
            .map(|c| c.line)
            .collect();
        for comment in comments {
            let Some(body) = marker_body(&comment.text) else {
                continue;
            };
            if body == "hot-path" {
                if let Some(start) = open_hot {
                    markers.errors.push(MarkerError {
                        line: comment.line,
                        col: comment.col,
                        message: format!(
                            "`lint: hot-path` opened again before the region from line {start} \
                             was closed with `lint: end-hot-path`"
                        ),
                    });
                } else {
                    open_hot = Some(comment.line);
                }
            } else if body == "end-hot-path" {
                match open_hot.take() {
                    Some(start) => markers.hot_regions.push(HotRegion {
                        start,
                        end: comment.line,
                    }),
                    None => markers.errors.push(MarkerError {
                        line: comment.line,
                        col: comment.col,
                        message: "`lint: end-hot-path` without a matching `lint: hot-path`".into(),
                    }),
                }
            } else if let Some(rest) = body.strip_prefix("allow-file") {
                match parse_allow(rest) {
                    Ok(rules) => markers.allows.push(Allow {
                        rules,
                        scope: AllowScope::File,
                        line: comment.line,
                        col: comment.col,
                    }),
                    Err(message) => markers.errors.push(MarkerError {
                        line: comment.line,
                        col: comment.col,
                        message,
                    }),
                }
            } else if let Some(rest) = body.strip_prefix("allow") {
                match parse_allow(rest) {
                    Ok(rules) => {
                        let target = if comment.trailing {
                            comment.line
                        } else {
                            let mut line = comment.line + 1;
                            while standalone_lines.contains(&line) {
                                line += 1;
                            }
                            line
                        };
                        markers.allows.push(Allow {
                            rules,
                            scope: AllowScope::Line(target),
                            line: comment.line,
                            col: comment.col,
                        });
                    }
                    Err(message) => markers.errors.push(MarkerError {
                        line: comment.line,
                        col: comment.col,
                        message,
                    }),
                }
            } else {
                markers.errors.push(MarkerError {
                    line: comment.line,
                    col: comment.col,
                    message: format!(
                        "unknown lint marker {body:?}; expected `allow(<rules>) -- <why>`, \
                         `allow-file(<rules>) -- <why>`, `hot-path`, or `end-hot-path`"
                    ),
                });
            }
        }
        if let Some(start) = open_hot {
            markers.errors.push(MarkerError {
                line: start,
                col: 1,
                message: "`lint: hot-path` region is never closed with `lint: end-hot-path`".into(),
            });
        }
        markers
    }
}

/// `lint:`-prefixed comments are markers; everything else is prose.
fn marker_body(comment_text: &str) -> Option<&str> {
    let trimmed = comment_text.trim_start_matches(['/', '!']).trim_start();
    trimmed.strip_prefix("lint:").map(str::trim)
}

/// Parses `(<rule>[, <rule>…]) -- <justification>`; the justification is
/// mandatory and must be non-empty.
fn parse_allow(rest: &str) -> Result<Vec<String>, String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("allow marker needs a rule list: `allow(<rule>) -- <why>`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("allow marker's rule list is missing its closing `)`".into());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow marker lists no rules".into());
    }
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix("--") else {
        return Err(
            "allow marker is missing its justification: every suppression must say why \
             (`allow(<rule>) -- <why>`)"
                .into(),
        );
    };
    if justification.trim().is_empty() {
        return Err("allow marker's justification is empty; say why the rule is safe here".into());
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Markers {
        Markers::parse(&lex(src).comments)
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let m = parse("let x = a.unwrap(); // lint: allow(D4) -- invariant upheld above\n");
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].rules, ["D4"]);
        assert_eq!(m.allows[0].scope, AllowScope::Line(1));
        assert!(m.errors.is_empty());
    }

    #[test]
    fn standalone_allow_targets_the_next_line() {
        let m = parse("// lint: allow(D2, D4) -- progress meter only\nlet t = Instant::now();\n");
        assert_eq!(m.allows[0].rules, ["D2", "D4"]);
        assert_eq!(m.allows[0].scope, AllowScope::Line(2));
    }

    #[test]
    fn standalone_allow_skips_wrapped_justification_lines() {
        let m = parse(
            "// lint: allow(D2) -- wall-clock feeds only the progress\n\
             // meter, never a measurement\nlet t = Instant::now();\n",
        );
        assert_eq!(m.allows[0].scope, AllowScope::Line(3));
    }

    #[test]
    fn file_allows_and_hot_regions_parse() {
        let m = parse(
            "// lint: allow-file(D1) -- keys are re-sorted before serialization\n\
             // lint: hot-path\nlet x = 1;\n// lint: end-hot-path\n",
        );
        assert_eq!(m.allows[0].scope, AllowScope::File);
        assert_eq!(m.hot_regions, [HotRegion { start: 2, end: 4 }]);
        assert!(m.errors.is_empty());
    }

    #[test]
    fn missing_justification_is_an_error() {
        for bad in [
            "// lint: allow(D4)\n",
            "// lint: allow(D4) -- \n",
            "// lint: allow() -- why\n",
            "// lint: allow D4 -- why\n",
            "// lint: allow(D4 -- why\n",
            "// lint: frobnicate\n",
        ] {
            let m = parse(bad);
            assert_eq!(m.errors.len(), 1, "{bad:?} should be rejected");
            assert!(m.allows.is_empty(), "{bad:?} must not half-parse");
        }
    }

    #[test]
    fn unbalanced_hot_regions_are_errors() {
        assert_eq!(parse("// lint: hot-path\n").errors.len(), 1);
        assert_eq!(parse("// lint: end-hot-path\n").errors.len(), 1);
        assert_eq!(
            parse("// lint: hot-path\n// lint: hot-path\n// lint: end-hot-path\n")
                .errors
                .len(),
            1
        );
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let m = parse("// nothing to see\n/* lint-free zone */\nlet x = 1;\n");
        assert!(m.allows.is_empty() && m.errors.is_empty() && m.hot_regions.is_empty());
    }
}
