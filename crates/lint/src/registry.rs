//! D5: the serde-stability registry.
//!
//! Every hand-written serde implementation in the workspace (an
//! `impl Serialize for T` block or a `serde_enum!(T { … })` invocation)
//! encodes a byte format that store files and cell keys depend on. The
//! registry (`crates/lint/serde_pins.txt`) maps each such type to the
//! pinned-bytes test that locks its wire shape. The rule fails when:
//!
//! * a serde-defining site appears with no registry entry (a new format
//!   shipped without a pin),
//! * a registry entry goes stale (the type no longer defines serde where
//!   the entry says it does), or
//! * the named pin test does not exist in the named file.

use crate::lexer::{Lexed, TokenKind};
use crate::rules::{test_regions, Finding};

/// One line of `serde_pins.txt`.
#[derive(Debug, Clone)]
pub struct PinEntry {
    /// The serde-defining type.
    pub type_name: String,
    /// Repo-relative file defining the serde impl.
    pub def_file: String,
    /// Repo-relative file holding the pin test.
    pub test_file: String,
    /// Name of the pin test function.
    pub test_fn: String,
    /// Line in the registry file (for diagnostics).
    pub line: u32,
}

/// A serde-defining site discovered in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerdeSite {
    /// The implementing type.
    pub type_name: String,
    /// 1-based line of the `impl`/macro invocation.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Parses the registry file. Format: one entry per line,
/// `Type <def-file> <test-file>::<test-fn>`, `#` comments, blank lines ok.
/// Malformed lines come back as findings against the registry file.
pub fn parse_registry(content: &str) -> (Vec<PinEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let parsed = match fields.as_slice() {
            [type_name, def_file, test_ref] => {
                test_ref
                    .split_once("::")
                    .map(|(test_file, test_fn)| PinEntry {
                        type_name: type_name.to_string(),
                        def_file: def_file.to_string(),
                        test_file: test_file.to_string(),
                        test_fn: test_fn.to_string(),
                        line: line_no,
                    })
            }
            _ => None,
        };
        match parsed {
            Some(entry) => entries.push(entry),
            None => findings.push(Finding {
                rule: "D5",
                name: "serde-stability-registry",
                line: line_no,
                col: 1,
                message: format!(
                    "malformed registry line {raw:?}; expected \
                     `Type <def-file> <test-file>::<test-fn>`"
                ),
                hint: "fix the entry format in crates/lint/serde_pins.txt".into(),
            }),
        }
    }
    (entries, findings)
}

/// Finds serde-defining sites in one lexed file: `impl Serialize for T`
/// (optionally with generics after `impl`) and `serde_enum!(T`. Sites inside
/// `#[cfg(test)]` regions are ignored.
pub fn serde_sites(lexed: &Lexed) -> Vec<SerdeSite> {
    let tokens = &lexed.tokens;
    let tests = test_regions(tokens);
    let in_test = |line: u32| tests.iter().any(|&(s, e)| line >= s && line <= e);
    let mut sites = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text == "impl" && !in_test(t.line) {
            let mut j = i + 1;
            // Skip an optional generic parameter list `<…>`.
            if tokens.get(j).is_some_and(|t| t.text == "<") {
                let mut depth = 0i32;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let is_serialize_for = tokens.get(j).is_some_and(|t| t.text == "Serialize")
                && tokens.get(j + 1).is_some_and(|t| t.text == "for")
                && tokens
                    .get(j + 2)
                    .is_some_and(|t| t.kind == TokenKind::Ident);
            if is_serialize_for {
                let target = &tokens[j + 2];
                sites.push(SerdeSite {
                    type_name: target.text.clone(),
                    line: t.line,
                    col: t.col,
                });
            }
        } else if t.kind == TokenKind::Ident
            && t.text == "serde_enum"
            && !in_test(t.line)
            && tokens.get(i + 1).is_some_and(|t| t.text == "!")
            && tokens.get(i + 2).is_some_and(|t| t.text == "(")
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            sites.push(SerdeSite {
                type_name: tokens[i + 3].text.clone(),
                line: t.line,
                col: t.col,
            });
        }
        i += 1;
    }
    sites
}

/// Whether a lexed file defines `fn <name>` anywhere (pin tests live inside
/// `#[cfg(test)]` modules, so test regions are *not* excluded here).
pub fn defines_fn(lexed: &Lexed, name: &str) -> bool {
    lexed.tokens.windows(2).any(|w| {
        w[0].kind == TokenKind::Ident
            && w[0].text == "fn"
            && w[1].kind == TokenKind::Ident
            && w[1].text == name
    })
}

/// Cross-checks detected sites against the registry. `files` maps
/// repo-relative paths to their lexed contents; `registry_path` is the
/// repo-relative registry path used for stale-entry diagnostics.
///
/// Returns `(file, finding)` pairs.
pub fn check_registry(
    entries: &[PinEntry],
    files: &[(String, Lexed)],
    registry_path: &str,
) -> Vec<(String, Finding)> {
    let mut findings = Vec::new();

    // Unregistered sites: serde defined, no pin recorded.
    for (path, lexed) in files {
        for site in serde_sites(lexed) {
            let registered = entries
                .iter()
                .any(|e| e.type_name == site.type_name && &e.def_file == path);
            if !registered {
                findings.push((
                    path.clone(),
                    Finding {
                        rule: "D5",
                        name: "serde-stability-registry",
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "`{}` defines a serde byte format but has no entry in \
                             crates/lint/serde_pins.txt; unpinned formats drift silently",
                            site.type_name
                        ),
                        hint: format!(
                            "write a pinned-bytes test for `{}` and register it: \
                             `{} {path} <test-file>::<test-fn>`",
                            site.type_name, site.type_name
                        ),
                    },
                ));
            }
        }
    }

    // Stale entries and missing pin tests.
    for entry in entries {
        let defines_site = files.iter().any(|(path, lexed)| {
            path == &entry.def_file
                && serde_sites(lexed)
                    .iter()
                    .any(|s| s.type_name == entry.type_name)
        });
        if !defines_site {
            findings.push((
                registry_path.to_string(),
                Finding {
                    rule: "D5",
                    name: "serde-stability-registry",
                    line: entry.line,
                    col: 1,
                    message: format!(
                        "stale registry entry: `{}` no longer defines serde in `{}`",
                        entry.type_name, entry.def_file
                    ),
                    hint: "remove or update the entry".into(),
                },
            ));
        }
        let test_lexed = files.iter().find(|(path, _)| path == &entry.test_file);
        let has_test = test_lexed.is_some_and(|(_, lexed)| defines_fn(lexed, &entry.test_fn));
        if !has_test {
            findings.push((
                registry_path.to_string(),
                Finding {
                    rule: "D5",
                    name: "serde-stability-registry",
                    line: entry.line,
                    col: 1,
                    message: format!(
                        "pin test `{}::{}` for `{}` does not exist",
                        entry.test_file, entry.test_fn, entry.type_name
                    ),
                    hint: "point the entry at a real pinned-bytes test".into(),
                },
            ));
        }
    }

    findings
        .sort_by(|a, b| (a.0.as_str(), a.1.line, a.1.col).cmp(&(b.0.as_str(), b.1.line, b.1.col)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn sites_are_detected_for_impls_macros_and_generics() {
        let src = "impl Serialize for Foo { }\n\
                   impl<'a> Serialize for Bar<'a> { }\n\
                   serde::serde_enum!(Baz { A => \"a\" });\n\
                   impl Display for NotSerde { }\n";
        let names: Vec<String> = serde_sites(&lex(src))
            .into_iter()
            .map(|s| s.type_name)
            .collect();
        assert_eq!(names, ["Foo", "Bar", "Baz"]);
    }

    #[test]
    fn sites_inside_test_modules_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    impl Serialize for Scratch { }\n}\n";
        assert!(serde_sites(&lex(src)).is_empty());
    }

    #[test]
    fn registry_parses_and_rejects_malformed_lines() {
        let content = "# comment\n\
                       Foo crates/a/src/x.rs crates/a/src/x.rs::foo_pins\n\
                       Broken line-without-test-ref\n";
        let (entries, findings) = parse_registry(content);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].type_name, "Foo");
        assert_eq!(entries[0].test_fn, "foo_pins");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn cross_check_flags_unregistered_stale_and_missing() {
        let file = (
            "crates/a/src/x.rs".to_string(),
            lex("impl Serialize for Foo { }\nfn foo_pins() {}\n"),
        );
        let files = vec![file];
        // Unregistered site.
        let hits = check_registry(&[], &files, "crates/lint/serde_pins.txt");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].1.message.contains("no entry"));
        // Fully registered: clean.
        let (entries, _) = parse_registry("Foo crates/a/src/x.rs crates/a/src/x.rs::foo_pins\n");
        assert!(check_registry(&entries, &files, "r").is_empty());
        // Stale entry + missing test.
        let (bad, _) = parse_registry("Gone crates/a/src/x.rs crates/a/src/x.rs::no_such_test\n");
        let hits = check_registry(&bad, &files, "crates/lint/serde_pins.txt");
        assert_eq!(hits.len(), 3, "stale + missing test + unregistered Foo");
    }
}
