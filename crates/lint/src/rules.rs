//! The rule engine: determinism and invariant rules over a token stream.
//!
//! Every rule is grounded in an invariant the workspace already pins
//! dynamically (byte-stable stores, seed-pure trial allocation, the
//! zero-allocation round loop) — the lint moves the check from "a test
//! would have caught it eventually" to "the tree does not build the
//! violation in the first place".
//!
//! | rule | name                    | scope                                  |
//! |------|-------------------------|----------------------------------------|
//! | D1   | no-unordered-iteration  | determinism crates                     |
//! | D2   | no-wall-clock-ambient-rng | determinism crates                   |
//! | D3   | no-alloc-in-hot-path    | `lint: hot-path` regions, everywhere   |
//! | D4   | panic-freedom           | non-test library code (bins exempt)    |
//! | D5   | serde-stability-registry | workspace-wide (see [`crate::registry`]) |
//! | D6   | crate-headers           | crate roots (`lib.rs`)                 |
//! | M1   | marker-syntax           | everywhere                             |
//! | M2   | unused-allow            | everywhere                             |

use crate::lexer::{Lexed, Token, TokenKind};
use crate::markers::{AllowScope, Markers};

/// Crates whose code feeds serde output, store bytes, or seeded execution —
/// the scope of the ordering (D1) and wall-clock/ambient-RNG (D2) rules.
/// `analysis` and `bench` are measurement harnesses: they may time things
/// and format freely, and nothing they compute enters a store byte. `fleet`
/// is in scope because shard-store bytes and wire frames must merge
/// deterministically (its hang detection carries a justified file allow).
pub const DETERMINISM_CRATES: &[&str] = &[
    "graphs",
    "sim",
    "adversary",
    "core",
    "scenario",
    "campaign",
    "fleet",
    "facade",
];

/// One diagnostic the lint emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Short rule id (`D1` … `D6`, `M1`, `M2`).
    pub rule: &'static str,
    /// Kebab-case rule name.
    pub name: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (printed under `--fix-hints`).
    pub hint: String,
}

/// How a file is situated in the workspace — drives rule scoping.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// The crate directory name (`campaign`, `sim`, …); `"facade"` for the
    /// root `src/`.
    pub crate_name: String,
    /// Whether the file is the crate root (`lib.rs` directly under `src/`).
    pub is_lib_root: bool,
    /// Whether the file is a binary target (`src/bin/…` or `src/main.rs`) —
    /// exempt from the panic-freedom rule (a CLI may abort; libraries
    /// propagate errors).
    pub is_bin: bool,
}

impl FileContext {
    fn determinism_scoped(&self) -> bool {
        DETERMINISM_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Runs every token-level rule over one lexed file, applies the file's
/// suppression markers, and reports marker problems (including unused
/// allows). Returned findings are sorted by position.
pub fn check_file(ctx: &FileContext, lexed: &Lexed) -> Vec<Finding> {
    let markers = Markers::parse(&lexed.comments);
    let test_lines = test_regions(&lexed.tokens);
    let in_test = |line: u32| test_lines.iter().any(|&(s, e)| line >= s && line <= e);

    let mut raw: Vec<Finding> = Vec::new();
    if ctx.determinism_scoped() {
        rule_d1(&lexed.tokens, &mut raw);
        rule_d2(&lexed.tokens, &mut raw);
    }
    rule_d3(&lexed.tokens, &markers, &mut raw);
    if !ctx.is_bin {
        rule_d4(&lexed.tokens, &mut raw);
    }
    if ctx.is_lib_root {
        rule_d6(&lexed.tokens, &mut raw);
    }
    raw.retain(|f| !in_test(f.line));

    // Suppression: a finding dies to the first allow covering its rule and
    // position; every allow must kill at least one finding.
    let mut used = vec![false; markers.allows.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for finding in raw {
        let suppressed = markers.allows.iter().enumerate().any(|(i, allow)| {
            let rule_match = allow.rules.iter().any(|r| r == finding.rule);
            let scope_match = match allow.scope {
                AllowScope::Line(line) => line == finding.line,
                AllowScope::File => true,
            };
            if rule_match && scope_match {
                used[i] = true;
                true
            } else {
                false
            }
        });
        if !suppressed {
            findings.push(finding);
        }
    }

    for error in &markers.errors {
        if in_test(error.line) {
            continue;
        }
        findings.push(Finding {
            rule: "M1",
            name: "marker-syntax",
            line: error.line,
            col: error.col,
            message: error.message.clone(),
            hint: "fix the marker: `// lint: allow(<rule>) -- <justification>`".into(),
        });
    }
    for (i, allow) in markers.allows.iter().enumerate() {
        if used[i] || in_test(allow.line) {
            continue;
        }
        findings.push(Finding {
            rule: "M2",
            name: "unused-allow",
            line: allow.line,
            col: allow.col,
            message: format!(
                "allow({}) suppresses nothing; stale suppressions hide future violations",
                allow.rules.join(", ")
            ),
            hint: "delete the marker (or move it next to the code it excuses)".into(),
        });
    }

    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// D1: `HashMap`/`HashSet` iteration order is seeded per process — any use
/// in code that feeds serde output, `CellSpec::key()`, or store bytes is a
/// latent nondeterminism bug.
fn rule_d1(tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(Finding {
                rule: "D1",
                name: "no-unordered-iteration",
                line: t.line,
                col: t.col,
                message: format!(
                    "{} has randomized iteration order; in a determinism-scoped crate any \
                     iteration can leak into serde output, cell keys, or store bytes",
                    t.text
                ),
                hint: format!(
                    "use {ordered} (order-stable, usually free at these sizes), or add \
                     `// lint: allow(D1) -- <why the order provably never escapes>`"
                ),
            });
        }
    }
}

/// D2: wall-clock time and ambient (OS-seeded) randomness make trials
/// unreproducible; simulation code takes seeded RNGs only.
fn rule_d2(tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" | "SystemTime" | "thread_rng" => true,
            "random" => path_prefix_is(tokens, i, "rand"),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                rule: "D2",
                name: "no-wall-clock-ambient-rng",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` injects wall-clock time or OS entropy; trial outcomes must be a pure \
                     function of the spec and its seed",
                    t.text
                ),
                hint: "thread a seeded `ChaCha8Rng` (or round counter) through instead, or add \
                       `// lint: allow(D2) -- <why this never reaches a measurement>`"
                    .into(),
            });
        }
    }
}

/// D3: inside `lint: hot-path` regions, constructs that allocate per round
/// are forbidden — the round loop was made allocation-free in PR 3 and must
/// stay that way.
fn rule_d3(tokens: &[Token], markers: &Markers, out: &mut Vec<Finding>) {
    if markers.hot_regions.is_empty() {
        return;
    }
    let in_hot = |line: u32| {
        markers
            .hot_regions
            .iter()
            .any(|r| line >= r.start && line <= r.end)
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !in_hot(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "clone" | "collect" | "to_vec" => after_dot_or_path(tokens, i),
            "format" | "vec" => next_is_bang(tokens, i),
            "new" => path_prefix_is(tokens, i, "Vec") || path_prefix_is(tokens, i, "Box"),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                rule: "D3",
                name: "no-alloc-in-hot-path",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` allocates inside a `lint: hot-path` region; the round loop reuses \
                     scratch buffers and must stay allocation-free",
                    t.text
                ),
                hint: "reuse a scratch buffer (clear, don't reallocate), or add \
                       `// lint: allow(D3) -- <why this path is cold or amortized>`"
                    .into(),
            });
        }
    }
}

/// D4: `unwrap`/`expect`/`panic!`/`todo!` in library code abort a whole
/// campaign worker; every panic-capable call needs a written justification.
fn rule_d4(tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => after_dot_or_path(tokens, i),
            "panic" | "todo" | "unimplemented" => next_is_bang(tokens, i),
            _ => false,
        };
        if flagged {
            out.push(Finding {
                rule: "D4",
                name: "panic-freedom",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` can panic in library code; campaign workers catch panics but lose \
                     the cell — errors should propagate as `Result`s",
                    t.text
                ),
                hint: "return an error (the crate error types cover this), or add \
                       `// lint: allow(D4) -- <the invariant that makes this unreachable>`"
                    .into(),
            });
        }
    }
}

/// D6: every crate root carries the workspace's unified lint header.
fn rule_d6(tokens: &[Token], out: &mut Vec<Finding>) {
    for (level, arg) in [("forbid", "unsafe_code"), ("warn", "missing_docs")] {
        if !has_inner_attr(tokens, level, arg) {
            out.push(Finding {
                rule: "D6",
                name: "crate-headers",
                line: 1,
                col: 1,
                message: format!(
                    "crate root is missing `#![{level}({arg})]`; every workspace crate \
                     carries the unified lint header"
                ),
                hint: format!("add `#![{level}({arg})]` under the crate docs"),
            });
        }
    }
}

/// Whether token `i` is preceded by `.` or `::` (a method call or path
/// segment, as opposed to e.g. a local named `clone`).
fn after_dot_or_path(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).and_then(|j| tokens.get(j)) {
        Some(prev) if prev.kind == TokenKind::Punct => prev.text == "." || prev.text == ":",
        _ => false,
    }
}

/// Whether token `i` is immediately followed by `!` (a macro invocation).
fn next_is_bang(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct && t.text == "!")
}

/// Whether token `i` is the last segment of a path starting with `prefix`
/// (`prefix :: ident`).
fn path_prefix_is(tokens: &[Token], i: usize, prefix: &str) -> bool {
    if i < 3 {
        return false;
    }
    let colons = tokens[i - 2].text == ":" && tokens[i - 1].text == ":";
    colons && tokens[i - 3].kind == TokenKind::Ident && tokens[i - 3].text == prefix
}

fn has_inner_attr(tokens: &[Token], level: &str, arg: &str) -> bool {
    tokens.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == level
            && w[4].text == "("
            && w[5].text == arg
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items — test
/// modules and test-only helpers are exempt from every rule.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `#[cfg(` … `test` … `)]`.
        let is_cfg_test = tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
            && tokens.get(i + 2).is_some_and(|t| t.text == "cfg")
            && tokens.get(i + 3).is_some_and(|t| t.text == "(");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan the attribute's argument list for the `test` flag.
        let start_line = tokens[i].line;
        let mut j = i + 4;
        let mut depth = 1usize;
        let mut saw_test = false;
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                "test" if tokens[j].kind == TokenKind::Ident => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        // Expect the closing `]`.
        if j < tokens.len() && tokens[j].text == "]" {
            j += 1;
        }
        if !saw_test {
            i = j;
            continue;
        }
        // The annotated item: skip further attributes, then span either to
        // the `;` of a bodyless item or across the balanced `{ … }` body.
        while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
            let mut d = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut brace_depth = 0usize;
        let mut end_line = start_line;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                ";" if brace_depth == 0 => {
                    end_line = tokens[j].line;
                    break;
                }
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = tokens[j].line;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(crate_name: &str, src: &str) -> Vec<Finding> {
        let ctx = FileContext {
            crate_name: crate_name.into(),
            is_lib_root: false,
            is_bin: false,
        };
        check_file(&ctx, &lex(src))
    }

    #[test]
    fn d1_flags_hash_collections_in_scope_only() {
        let src = "use std::collections::HashMap;\nfn f() -> HashSet<u32> { todo() }\n";
        let in_scope = check("campaign", src);
        assert_eq!(in_scope.iter().filter(|f| f.rule == "D1").count(), 2);
        let out_of_scope = check("analysis", src);
        assert!(out_of_scope.iter().all(|f| f.rule != "D1"));
        // Strings and comments never trigger it.
        assert!(check("campaign", "// HashMap\nconst S: &str = \"HashMap\";\n").is_empty());
    }

    #[test]
    fn d2_flags_clock_and_ambient_rng() {
        let src =
            "use std::time::Instant;\nlet x = rand::random::<f64>();\nlet r = thread_rng();\n";
        let hits = check("sim", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "D2").count(), 3);
        // `random` as a field or free fn is not `rand::random`.
        assert!(check("sim", "let random = 3; self.random();").is_empty());
    }

    #[test]
    fn d3_only_fires_inside_hot_regions() {
        let cold = "fn setup() { let v: Vec<u32> = (0..4).collect(); }\n";
        assert!(check("sim", cold).is_empty());
        let hot = "// lint: hot-path\nfn round() { let v = Vec::new(); let s = x.clone(); \
                   let f = format!(\"x\"); }\n// lint: end-hot-path\n";
        let hits = check("sim", hot);
        assert_eq!(hits.iter().filter(|f| f.rule == "D3").count(), 3);
    }

    #[test]
    fn d4_flags_panic_capable_calls_and_honors_allows() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }\n";
        assert_eq!(check("graphs", src).len(), 3);
        let allowed = "fn f() {\n    // lint: allow(D4) -- index is in range by construction\n    \
                       x.unwrap();\n}\n";
        assert!(check("graphs", allowed).is_empty());
        // `unwrap` not in call position (a local, a definition) is fine.
        assert!(check("graphs", "fn unwrap() {} let unwrap = 2;").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); \
                   let m = std::collections::HashMap::new(); }\n}\n";
        assert!(check("campaign", src).is_empty());
        // `#[cfg(test)]` on a bodyless item exempts just that item.
        let use_only = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() { y.unwrap(); }\n";
        let hits = check("campaign", use_only);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D4");
    }

    #[test]
    fn d6_requires_the_unified_header() {
        let ctx = FileContext {
            crate_name: "sim".into(),
            is_lib_root: true,
            is_bin: false,
        };
        let bare = check_file(&ctx, &lex("//! docs\npub fn f() {}\n"));
        assert_eq!(bare.iter().filter(|f| f.rule == "D6").count(), 2);
        let full = check_file(
            &ctx,
            &lex("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n"),
        );
        assert!(full.is_empty());
    }

    #[test]
    fn bins_are_exempt_from_panic_freedom_only() {
        let ctx = FileContext {
            crate_name: "campaign".into(),
            is_lib_root: false,
            is_bin: true,
        };
        let src = "fn main() { let m: std::collections::HashMap<u32, u32> = x.unwrap(); }\n";
        let hits = check_file(&ctx, &lex(src));
        assert!(hits.iter().all(|f| f.rule != "D4"));
        assert!(hits.iter().any(|f| f.rule == "D1"));
    }

    #[test]
    fn unused_allows_are_reported() {
        let src = "// lint: allow(D4) -- nothing here panics\nfn f() {}\n";
        let hits = check("campaign", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "M2");
        // A used file-scope allow is not unused.
        let used = "// lint: allow-file(D1) -- ordering never escapes this module\n\
                    use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}\n";
        assert!(check("campaign", used).is_empty());
    }

    #[test]
    fn marker_errors_surface_as_findings() {
        let hits = check("campaign", "// lint: allow(D4)\nfn f() { x.unwrap(); }\n");
        assert!(hits.iter().any(|f| f.rule == "M1"));
        assert!(hits.iter().any(|f| f.rule == "D4"), "no half-suppression");
    }
}
