//! Fixture corpus tests: one true-positive and one true-negative source
//! file per rule under `tests/fixtures/`, each run through the real rule
//! engine — and, end-to-end, through the real driver over a scratch
//! workspace, asserting the report the CLI maps to its exit code.

use dradio_lint::lexer::lex;
use dradio_lint::registry::{check_registry, parse_registry};
use dradio_lint::rules::check_file;
use dradio_lint::{FileContext, Finding};

const D1_VIOLATION: &str = include_str!("fixtures/d1_violation.rs");
const D1_CLEAN: &str = include_str!("fixtures/d1_clean.rs");
const D2_VIOLATION: &str = include_str!("fixtures/d2_violation.rs");
const D2_CLEAN: &str = include_str!("fixtures/d2_clean.rs");
const D3_VIOLATION: &str = include_str!("fixtures/d3_violation.rs");
const D3_CLEAN: &str = include_str!("fixtures/d3_clean.rs");
const D4_VIOLATION: &str = include_str!("fixtures/d4_violation.rs");
const D4_CLEAN: &str = include_str!("fixtures/d4_clean.rs");
const D5_VIOLATION: &str = include_str!("fixtures/d5_violation.rs");
const D5_CLEAN: &str = include_str!("fixtures/d5_clean.rs");
const D6_VIOLATION: &str = include_str!("fixtures/d6_violation.rs");
const D6_CLEAN: &str = include_str!("fixtures/d6_clean.rs");
const M1_VIOLATION: &str = include_str!("fixtures/m1_violation.rs");
const M2_VIOLATION: &str = include_str!("fixtures/m2_violation.rs");
const M_CLEAN: &str = include_str!("fixtures/m_clean.rs");

fn ctx(crate_name: &str, is_lib_root: bool) -> FileContext {
    FileContext {
        crate_name: crate_name.to_string(),
        is_lib_root,
        is_bin: false,
    }
}

fn findings(src: &str, ctx: &FileContext) -> Vec<Finding> {
    check_file(ctx, &lex(src))
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn d1_flags_hash_collections_in_determinism_crates_only() {
    let hits = findings(D1_VIOLATION, &ctx("sim", false));
    assert!(hits.len() >= 2, "HashMap and HashSet should both fire");
    assert!(rules_of(&hits).iter().all(|r| *r == "D1"), "{hits:?}");
    // The same file is fine in a measurement crate — D1 is scoped.
    assert!(findings(D1_VIOLATION, &ctx("analysis", false)).is_empty());
    assert!(findings(D1_CLEAN, &ctx("sim", false)).is_empty());
}

#[test]
fn d2_flags_clocks_and_ambient_rng() {
    let hits = findings(D2_VIOLATION, &ctx("core", false));
    assert!(rules_of(&hits).iter().all(|r| *r == "D2"), "{hits:?}");
    let flagged: Vec<&str> = hits.iter().map(|f| f.message.as_str()).collect();
    assert!(flagged.iter().any(|m| m.contains("`Instant`")));
    assert!(flagged.iter().any(|m| m.contains("`random`")));
    assert!(flagged.iter().any(|m| m.contains("`thread_rng`")));
    assert!(findings(D2_CLEAN, &ctx("core", false)).is_empty());
}

#[test]
fn d3_flags_allocation_only_inside_hot_regions() {
    let hits = findings(D3_VIOLATION, &ctx("analysis", false));
    assert_eq!(rules_of(&hits), ["D3", "D3", "D3"], "{hits:?}");
    // The clean twin allocates too — but outside the region.
    assert!(findings(D3_CLEAN, &ctx("analysis", false)).is_empty());
}

#[test]
fn d4_flags_panic_capable_calls_outside_tests() {
    let hits = findings(D4_VIOLATION, &ctx("analysis", false));
    assert_eq!(rules_of(&hits), ["D4", "D4", "D4"], "{hits:?}");
    // The clean twin unwraps inside #[cfg(test)], which every rule skips.
    assert!(findings(D4_CLEAN, &ctx("analysis", false)).is_empty());
}

#[test]
fn d5_flags_unregistered_serde_sites_and_accepts_pinned_ones() {
    let violation = vec![(
        "crates/sim/src/d5_violation.rs".to_string(),
        lex(D5_VIOLATION),
    )];
    let hits = check_registry(&[], &violation, "crates/lint/serde_pins.txt");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].1.message.contains("Unpinned"), "{hits:?}");

    let clean = vec![("crates/sim/src/d5_clean.rs".to_string(), lex(D5_CLEAN))];
    let (entries, parse_errors) = parse_registry(
        "Pinned crates/sim/src/d5_clean.rs crates/sim/src/d5_clean.rs::pinned_serializes_to_null\n",
    );
    assert!(parse_errors.is_empty());
    assert!(check_registry(&entries, &clean, "crates/lint/serde_pins.txt").is_empty());
}

#[test]
fn d6_flags_missing_headers_on_lib_roots_only() {
    let hits = findings(D6_VIOLATION, &ctx("sim", true));
    assert_eq!(rules_of(&hits), ["D6", "D6"], "{hits:?}");
    // Ordinary modules carry no header requirement.
    assert!(findings(D6_VIOLATION, &ctx("sim", false)).is_empty());
    assert!(findings(D6_CLEAN, &ctx("sim", true)).is_empty());
}

#[test]
fn m1_flags_malformed_markers_and_the_finding_they_failed_to_suppress() {
    let hits = findings(M1_VIOLATION, &ctx("analysis", false));
    let m1: Vec<&Finding> = hits.iter().filter(|f| f.rule == "M1").collect();
    assert_eq!(m1.len(), 2, "{hits:?}");
    // A marker that fails to parse suppresses nothing: the D4 still fires.
    assert!(rules_of(&hits).contains(&"D4"), "{hits:?}");
}

#[test]
fn m2_flags_allows_that_suppress_nothing() {
    let hits = findings(M2_VIOLATION, &ctx("analysis", false));
    assert_eq!(rules_of(&hits), ["M2"], "{hits:?}");
    // A justified allow that kills a real finding is silent on both sides.
    assert!(findings(M_CLEAN, &ctx("analysis", false)).is_empty());
}

/// Builds a one-file scratch workspace, runs the real driver over it, and
/// returns the report — the CLI exits non-zero exactly when `!is_clean()`.
fn run_driver_on(fixture_src: &str, dest_rel: &str, registry: &str, tag: &str) -> bool {
    let root =
        std::env::temp_dir().join(format!("dradio-lint-fixture-{}-{tag}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("scratch root resets");
    }
    let file = root.join(dest_rel);
    std::fs::create_dir_all(file.parent().expect("fixture paths have parents"))
        .expect("scratch dirs build");
    std::fs::write(&file, fixture_src).expect("fixture writes");
    let reg = root.join(dradio_lint::REGISTRY_PATH);
    std::fs::create_dir_all(reg.parent().expect("registry path has a parent"))
        .expect("registry dir builds");
    std::fs::write(&reg, registry).expect("registry writes");
    let report = dradio_lint::run_check(&root).expect("driver runs");
    std::fs::remove_dir_all(&root).ok();
    report.is_clean()
}

#[test]
fn driver_reports_findings_on_every_violation_fixture() {
    let cases: [(&str, &str, &str); 8] = [
        (D1_VIOLATION, "crates/sim/src/d1_violation.rs", "d1"),
        (D2_VIOLATION, "crates/sim/src/d2_violation.rs", "d2"),
        (D3_VIOLATION, "crates/sim/src/d3_violation.rs", "d3"),
        (D4_VIOLATION, "crates/sim/src/d4_violation.rs", "d4"),
        (D5_VIOLATION, "crates/sim/src/d5_violation.rs", "d5"),
        (D6_VIOLATION, "crates/sim/src/lib.rs", "d6"),
        (M1_VIOLATION, "crates/sim/src/m1_violation.rs", "m1"),
        (M2_VIOLATION, "crates/sim/src/m2_violation.rs", "m2"),
    ];
    for (src, dest, tag) in cases {
        assert!(
            !run_driver_on(src, dest, "", tag),
            "{tag} violation fixture must produce findings"
        );
    }
}

#[test]
fn driver_is_clean_on_every_clean_fixture() {
    let cases: [(&str, &str, &str, &str); 7] = [
        (D1_CLEAN, "crates/sim/src/d1_clean.rs", "", "d1c"),
        (D2_CLEAN, "crates/sim/src/d2_clean.rs", "", "d2c"),
        (D3_CLEAN, "crates/sim/src/d3_clean.rs", "", "d3c"),
        (D4_CLEAN, "crates/sim/src/d4_clean.rs", "", "d4c"),
        (
            D5_CLEAN,
            "crates/sim/src/d5_clean.rs",
            "Pinned crates/sim/src/d5_clean.rs \
             crates/sim/src/d5_clean.rs::pinned_serializes_to_null\n",
            "d5c",
        ),
        (D6_CLEAN, "crates/sim/src/lib.rs", "", "d6c"),
        (M_CLEAN, "crates/sim/src/m_clean.rs", "", "mc"),
    ];
    for (src, dest, registry, tag) in cases {
        assert!(
            run_driver_on(src, dest, registry, tag),
            "{tag} clean fixture must produce no findings"
        );
    }
}
