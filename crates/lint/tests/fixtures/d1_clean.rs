// D1 true negative: the same index built on ordered collections.
use std::collections::{BTreeMap, BTreeSet};

pub fn index(keys: &[String]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for (i, key) in keys.iter().enumerate() {
        if seen.insert(key.clone()) {
            map.insert(key.clone(), i);
        }
    }
    map
}
