// D1 true positive: hash collections in a determinism-scoped crate. Their
// iteration order is seeded per process, so anything they feed (serde
// output, cell keys, store bytes) varies run to run.
use std::collections::{HashMap, HashSet};

pub fn index(keys: &[String]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    let mut seen = HashSet::new();
    for (i, key) in keys.iter().enumerate() {
        if seen.insert(key.clone()) {
            map.insert(key.clone(), i);
        }
    }
    map
}
