// D2 true negative: all randomness flows from an explicit seed; no clocks.
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub fn seeded_coin(seed: u64) -> bool {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.next_u32() & 1 == 0
}
