// D2 true positive: wall-clock time and ambient randomness in a
// determinism-scoped crate. Both make a trial's outcome depend on something
// other than the spec and its seed.
use std::time::Instant;

pub fn timed_coin() -> (bool, u128) {
    let start = Instant::now();
    let heads = rand::random();
    let mut rng = rand::thread_rng();
    let _ = rng.next_u32();
    (heads, start.elapsed().as_millis())
}
