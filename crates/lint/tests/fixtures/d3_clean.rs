// D3 true negative: the hot region only reuses a caller-owned scratch
// buffer; the allocation sits outside the region where the rule is silent.
pub fn sum_into(items: &[u32], scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    let mut acc = 0;
    // lint: hot-path
    for item in items {
        scratch.push(*item);
        acc += *item;
    }
    // lint: end-hot-path
    let copies = scratch.clone();
    acc + copies.len() as u32
}
