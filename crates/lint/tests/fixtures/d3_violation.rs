// D3 true positive: per-iteration allocation inside a declared hot-path
// region — exactly the regression the zero-allocation round loop guards
// against.
pub fn sum_with_copies(items: &[u32]) -> u32 {
    let mut acc = 0;
    // lint: hot-path
    for item in items {
        let copy = items.to_vec();
        let mut scratch = Vec::new();
        scratch.push(copy[0]);
        let label = format!("{item}");
        acc += *item + label.len() as u32;
    }
    // lint: end-hot-path
    acc
}
