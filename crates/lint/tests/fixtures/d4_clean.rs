// D4 true negative: library code propagates options/results; unwrap is
// fine inside the #[cfg(test)] module, which every rule skips.
pub fn first(items: &[u32]) -> Option<u32> {
    items.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(first(&[7]).unwrap(), 7);
    }
}
