// D4 true positive: panic-capable calls in non-test library code with no
// justification — one aborted campaign worker per reachable panic.
pub fn first(items: &[u32]) -> u32 {
    *items.first().unwrap()
}

pub fn checked(flag: bool) -> u32 {
    if flag {
        panic!("flag must be false");
    }
    let value: Result<u32, ()> = Ok(0);
    value.expect("just constructed")
}
