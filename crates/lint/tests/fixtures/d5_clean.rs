// D5 true negative: the serde impl is registered, and the registered pin
// test exists in this file.
pub struct Pinned;

impl Serialize for Pinned {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn pinned_serializes_to_null() {}
}
