// D5 true positive: a hand-written serde impl with no entry in the
// serde-stability registry — a byte format shipped without a pin test.
pub struct Unpinned;

impl Serialize for Unpinned {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
