//! D6 true negative: a crate root carrying the unified header.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Does nothing, documented.
pub fn nothing() {}
