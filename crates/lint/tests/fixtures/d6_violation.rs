//! D6 true positive: a crate root missing both unified header attributes.

pub fn nothing() {}
