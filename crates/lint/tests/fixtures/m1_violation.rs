// M1 true positive: markers with broken syntax — a suppression without a
// justification and an unknown marker verb.
pub fn first(items: &[u32]) -> u32 {
    // lint: allow(D4)
    *items.first().unwrap()
}

// lint: frobnicate
pub fn second() {}
