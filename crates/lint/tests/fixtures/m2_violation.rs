// M2 true positive: a well-formed allow that suppresses nothing — stale
// suppressions hide future violations and must be deleted.
// lint: allow(D4) -- nothing here panics anymore, the unwrap was removed
pub fn safe() -> u32 {
    7
}
