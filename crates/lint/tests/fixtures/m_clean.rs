// M1/M2 true negative: a justified allow that earns its keep by killing a
// real D4 finding — no marker diagnostics, no rule diagnostics.
pub fn first(items: &[u32]) -> u32 {
    // lint: allow(D4) -- fixture contract: callers pass non-empty slices
    *items.first().unwrap()
}
