//! Declarative adversary (link process) specifications.

use dradio_adversary::{
    BraceletOblivious, DecayAwareOblivious, DenseSparseOnline, GilbertElliottLinks,
    GreedyCollisionOnline, IidLinks, OmniscientOffline, ScheduleLinks,
};
use dradio_graphs::{Edge, NodeId};
use dradio_sim::{AdversaryClass, LinkProcess, StaticLinks};

use crate::error::{Result, ScenarioError};
use crate::topology::BuiltTopology;

/// Every link process in [`dradio_adversary`] (plus the degenerate
/// [`StaticLinks`] baselines from [`dradio_sim`]), as a pure, serializable
/// value.
///
/// Adversaries are stateful, so a spec is a *recipe*: the runner builds one
/// fresh link process per trial from it.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversarySpec {
    /// Never activate a dynamic edge: the static protocol model over `G`.
    StaticNone,
    /// Activate every dynamic edge every round: the protocol model over `G'`.
    StaticAll,
    /// Each dynamic edge present i.i.d. with probability `p` each round.
    Iid {
        /// Per-round, per-edge activation probability.
        p: f64,
    },
    /// Bursty per-edge Gilbert–Elliott on/off chains.
    GilbertElliott {
        /// Probability a good edge turns bad each round.
        p_fail: f64,
        /// Probability a bad edge recovers each round.
        p_recover: f64,
    },
    /// An arbitrary precomputed schedule: round `r` activates the dynamic
    /// edges listed at index `r` (cycling past the end).
    Schedule {
        /// Per-round lists of `(u, v)` node-index pairs to activate.
        rounds: Vec<Vec<(usize, usize)>>,
    },
    /// The Section 4.1 schedule-aware attack on fixed-order Decay.
    DecayAware {
        /// Decay levels the victim cycles through; `None` derives
        /// `⌈log₂ n⌉` from the network size at build time.
        levels: Option<usize>,
        /// Node indices the attacker assumes may transmit; empty means
        /// "derive from the role assignment at execution start".
        assumed_transmitters: Vec<usize>,
    },
    /// The Theorem 4.3 isolated-broadcast-function attacker. Only valid on
    /// bracelet topologies (it needs the band structure).
    BraceletAttack,
    /// The Theorem 3.1 dense/sparse expectation-threshold online attacker.
    DenseSparse {
        /// Density threshold factor; `None` uses the attacker's default.
        density_factor: Option<f64>,
    },
    /// The frontier collision online attacker.
    GreedyCollision,
    /// The omniscient offline blocker (sees the round's actions).
    Omniscient,
    /// A link process supplied directly through
    /// [`ScenarioBuilder::custom_adversary`](crate::ScenarioBuilder::custom_adversary).
    ///
    /// The name is recorded for serialized specs; the closure itself is not
    /// serialized, so building a deserialized `Custom` spec fails with
    /// [`ScenarioError::CustomUnavailable`] unless re-attached.
    Custom {
        /// Descriptive name of the attached link process.
        name: String,
    },
}

serde::serde_enum!(AdversarySpec {
    StaticNone,
    StaticAll,
    Iid { p: f64 },
    GilbertElliott { p_fail: f64, p_recover: f64 },
    Schedule { rounds: Vec<Vec<(usize, usize)>> },
    DecayAware { levels: Option<usize>, assumed_transmitters: Vec<usize> },
    BraceletAttack,
    DenseSparse { density_factor: Option<f64> },
    GreedyCollision,
    Omniscient,
    Custom { name: String },
});

impl AdversarySpec {
    /// A short human-readable label for tables and traces.
    pub fn label(&self) -> String {
        match self {
            AdversarySpec::StaticNone => "static-none".into(),
            AdversarySpec::StaticAll => "static-all".into(),
            AdversarySpec::Iid { p } => format!("iid({p})"),
            AdversarySpec::GilbertElliott { p_fail, p_recover } => {
                format!("bursty({p_fail},{p_recover})")
            }
            AdversarySpec::Schedule { rounds } => format!("schedule({} rounds)", rounds.len()),
            AdversarySpec::DecayAware { .. } => "decay-aware".into(),
            AdversarySpec::BraceletAttack => "bracelet-oblivious".into(),
            AdversarySpec::DenseSparse { .. } => "dense-sparse".into(),
            AdversarySpec::GreedyCollision => "greedy-collision".into(),
            AdversarySpec::Omniscient => "omniscient-offline".into(),
            AdversarySpec::Custom { name } => format!("custom({name})"),
        }
    }

    /// The capability class the built adversary will declare, when it is
    /// known from the spec alone (`None` for [`AdversarySpec::Custom`]).
    pub fn class(&self) -> Option<AdversaryClass> {
        match self {
            AdversarySpec::StaticNone
            | AdversarySpec::StaticAll
            | AdversarySpec::Iid { .. }
            | AdversarySpec::GilbertElliott { .. }
            | AdversarySpec::Schedule { .. }
            | AdversarySpec::DecayAware { .. }
            | AdversarySpec::BraceletAttack => Some(AdversaryClass::Oblivious),
            AdversarySpec::DenseSparse { .. } | AdversarySpec::GreedyCollision => {
                Some(AdversaryClass::OnlineAdaptive)
            }
            AdversarySpec::Omniscient => Some(AdversaryClass::OfflineAdaptive),
            AdversarySpec::Custom { .. } => None,
        }
    }

    /// Builds one fresh link process for a trial on `topology`.
    ///
    /// # Errors
    ///
    /// * [`ScenarioError::Incompatible`] if the spec needs construction
    ///   metadata the topology does not carry (bracelet attack elsewhere).
    /// * [`ScenarioError::CustomUnavailable`] for [`AdversarySpec::Custom`].
    pub fn build(&self, topology: &BuiltTopology) -> Result<Box<dyn LinkProcess>> {
        Ok(match self {
            AdversarySpec::StaticNone => Box::new(StaticLinks::none()),
            AdversarySpec::StaticAll => Box::new(StaticLinks::all()),
            AdversarySpec::Iid { p } => Box::new(IidLinks::new(*p)),
            AdversarySpec::GilbertElliott { p_fail, p_recover } => {
                Box::new(GilbertElliottLinks::new(*p_fail, *p_recover))
            }
            AdversarySpec::Schedule { rounds } => {
                let schedule: Vec<Vec<Edge>> = rounds
                    .iter()
                    .map(|round| {
                        round
                            .iter()
                            .map(|&(u, v)| Edge::new(NodeId::new(u), NodeId::new(v)))
                            .collect()
                    })
                    .collect();
                Box::new(ScheduleLinks::new(schedule))
            }
            AdversarySpec::DecayAware {
                levels,
                assumed_transmitters,
            } => {
                let attacker = match levels {
                    Some(levels) => DecayAwareOblivious::new(*levels),
                    None => DecayAwareOblivious::for_network(topology.len()),
                };
                if assumed_transmitters.is_empty() {
                    Box::new(attacker)
                } else {
                    let nodes: Vec<NodeId> = assumed_transmitters
                        .iter()
                        .map(|&i| NodeId::new(i))
                        .collect();
                    Box::new(attacker.assuming_transmitters(nodes))
                }
            }
            AdversarySpec::BraceletAttack => {
                let bracelet =
                    topology
                        .bracelet
                        .as_ref()
                        .ok_or_else(|| ScenarioError::Incompatible {
                            reason: "the bracelet attack needs a bracelet topology (its band \
                                 structure drives the pre-simulation)"
                                .into(),
                        })?;
                Box::new(BraceletOblivious::new(bracelet))
            }
            AdversarySpec::DenseSparse { density_factor } => match density_factor {
                Some(f) => Box::new(DenseSparseOnline::new(*f)),
                None => Box::new(DenseSparseOnline::default()),
            },
            AdversarySpec::GreedyCollision => Box::new(GreedyCollisionOnline::new()),
            AdversarySpec::Omniscient => Box::new(OmniscientOffline::new()),
            AdversarySpec::Custom { .. } => {
                return Err(ScenarioError::CustomUnavailable { what: "adversary" });
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologySpec;

    fn all_declarative() -> Vec<AdversarySpec> {
        vec![
            AdversarySpec::StaticNone,
            AdversarySpec::StaticAll,
            AdversarySpec::Iid { p: 0.5 },
            AdversarySpec::GilbertElliott {
                p_fail: 0.1,
                p_recover: 0.1,
            },
            AdversarySpec::Schedule {
                rounds: vec![vec![(0, 5)], vec![]],
            },
            AdversarySpec::DecayAware {
                levels: None,
                assumed_transmitters: vec![0, 1],
            },
            AdversarySpec::DenseSparse {
                density_factor: None,
            },
            AdversarySpec::GreedyCollision,
            AdversarySpec::Omniscient,
        ]
    }

    #[test]
    fn every_declarative_spec_builds_on_the_dual_clique() {
        let topo = TopologySpec::DualClique { n: 8 }.build().unwrap();
        for spec in all_declarative() {
            let link = spec
                .build(&topo)
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.label()));
            assert_eq!(
                Some(link.class()),
                spec.class(),
                "{} class mismatch",
                spec.label()
            );
        }
    }

    #[test]
    fn bracelet_attack_needs_a_bracelet() {
        let clique = TopologySpec::DualClique { n: 8 }.build().unwrap();
        let err = match AdversarySpec::BraceletAttack.build(&clique) {
            Err(e) => e,
            Ok(_) => panic!("bracelet attack must be rejected on a clique"),
        };
        assert!(matches!(err, ScenarioError::Incompatible { .. }));

        let bracelet = TopologySpec::Bracelet { k: 3 }.build().unwrap();
        let link = AdversarySpec::BraceletAttack.build(&bracelet).unwrap();
        assert_eq!(link.class(), AdversaryClass::Oblivious);
    }

    #[test]
    fn every_capability_class_is_represented() {
        let classes: Vec<AdversaryClass> = all_declarative()
            .iter()
            .filter_map(AdversarySpec::class)
            .collect();
        for class in [
            AdversaryClass::Oblivious,
            AdversaryClass::OnlineAdaptive,
            AdversaryClass::OfflineAdaptive,
        ] {
            assert!(classes.contains(&class), "{class} not covered by any spec");
        }
    }

    #[test]
    fn specs_round_trip_through_serde() {
        for spec in all_declarative() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: AdversarySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }
}
