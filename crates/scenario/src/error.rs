//! Errors produced while resolving or running a scenario.

use std::fmt;

use dradio_graphs::GraphError;
use dradio_sim::SimError;

/// Everything that can go wrong while building or running a [`Scenario`].
///
/// [`Scenario`]: crate::Scenario
#[derive(Debug)]
pub enum ScenarioError {
    /// A required builder component was never supplied.
    Missing {
        /// Which component is missing ("algorithm", "problem", …).
        what: &'static str,
    },
    /// Two supplied components cannot be combined (e.g. a global algorithm
    /// with a local problem, or a bracelet attack on a non-bracelet
    /// topology).
    Incompatible {
        /// Human-readable explanation of the conflict.
        reason: String,
    },
    /// A spec variant that carries an attached runtime value (custom
    /// topology, custom factory) was built without that value — typically
    /// after deserializing a spec that was never serializable in full.
    CustomUnavailable {
        /// Which custom component is unavailable.
        what: &'static str,
    },
    /// The topology generator rejected its parameters.
    Topology(GraphError),
    /// The simulator rejected the assembled components.
    Sim(SimError),
    /// `run_trials` was asked for zero trials; an empty measurement has no
    /// meaningful summary, so the runner refuses instead of returning NaN-free
    /// zeros.
    NoTrials,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Missing { what } => {
                write!(f, "scenario is missing its {what}")
            }
            ScenarioError::Incompatible { reason } => {
                write!(f, "incompatible scenario components: {reason}")
            }
            ScenarioError::CustomUnavailable { what } => {
                write!(
                    f,
                    "the scenario spec names a custom {what} but no {what} value is attached; \
                     custom components must be re-attached through the builder"
                )
            }
            ScenarioError::Topology(e) => write!(f, "topology construction failed: {e}"),
            ScenarioError::Sim(e) => write!(f, "simulation construction failed: {e}"),
            ScenarioError::NoTrials => {
                write!(f, "run_trials requires at least one trial (got 0)")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Topology(e) => Some(e),
            ScenarioError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ScenarioError {
    fn from(e: GraphError) -> Self {
        ScenarioError::Topology(e)
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Sim(e)
    }
}

/// Convenient result alias for fallible scenario operations.
pub type Result<T> = std::result::Result<T, ScenarioError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ScenarioError, &str)> = vec![
            (
                ScenarioError::Missing { what: "algorithm" },
                "missing its algorithm",
            ),
            (
                ScenarioError::Incompatible { reason: "x".into() },
                "incompatible scenario components",
            ),
            (
                ScenarioError::CustomUnavailable { what: "topology" },
                "custom topology",
            ),
            (ScenarioError::NoTrials, "at least one trial"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
        }
    }
}
