//! Declarative scenarios for dual-graph radio network simulations.
//!
//! Every layer below this crate exposes one ingredient of a simulation — a
//! topology generator ([`dradio_graphs::topology`]), an execution engine
//! ([`dradio_sim`]), a link process ([`dradio_adversary`]), an algorithm and
//! a problem ([`dradio_core`]). This crate combines them behind a single
//! fluent entry point:
//!
//! ```
//! use dradio_core::algorithms::GlobalAlgorithm;
//! use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};
//!
//! let scenario = Scenario::on(TopologySpec::DualClique { n: 64 })
//!     .algorithm(GlobalAlgorithm::Permuted)
//!     .adversary(AdversarySpec::Iid { p: 0.5 })
//!     .problem(ProblemSpec::GlobalFrom(0))
//!     .seed(1)
//!     .build()?;
//!
//! // One execution ...
//! let outcome = scenario.run();
//! assert!(outcome.completed && scenario.verify(&outcome.history));
//!
//! // ... or many independent trials, fanned out across threads with
//! // deterministic per-trial seeds.
//! let measurement = scenario.run_trials(8)?;
//! assert_eq!(measurement.rounds.count, 8);
//! # Ok::<(), dradio_scenario::ScenarioError>(())
//! ```
//!
//! # Scenarios are values
//!
//! A [`ScenarioSpec`] — the (topology × algorithm × adversary × problem ×
//! seed) tuple behind a built [`Scenario`] — is `Clone + Debug + PartialEq`
//! and serde-serializable. Specs can be printed, stored in experiment
//! manifests, diffed, and swept programmatically; rebuilding a spec
//! reproduces the original execution bit for bit. Hand-written components
//! (custom graphs, factories, link processes) attach through the builder's
//! `custom_*` escape hatches and are recorded by name in the spec.
//!
//! # Parallel trials
//!
//! [`ScenarioRunner::run_trials`] derives each trial's master seed from the
//! scenario seed with the engine's splitmix64 stream derivation and fans the
//! trials out over rayon. Aggregation depends only on the trial outcomes in
//! index order, so the parallel runner returns exactly the same
//! [`Measurement`] as its sequential mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod error;
pub mod problem;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod topology;

pub use adversary::AdversarySpec;
pub use error::{Result, ScenarioError};
pub use problem::{AlgorithmSpec, ProblemSpec, ResolvedProblem};
pub use runner::{Measurement, ScenarioRunner, TrialAccumulator, TrialOutcome, TRIAL_STREAM_BASE};
pub use scenario::{LinkBuilder, Scenario, ScenarioBuilder, ScenarioSpec};
pub use stats::{Completion, ContentionCurve, Moments, Summary};
pub use topology::{BackendChoice, BuiltTopology, TopologySpec};

// Re-exported so campaign checks and bench banners can reason about
// storage backends and their memory footprints without depending on
// `dradio-graphs` directly.
pub use dradio_graphs::{csr_bytes_estimate, dense_bytes_estimate, GraphBackend};

// Re-exported so scenario and campaign callers can select a record mode,
// read typed per-trial metrics, or hold a reusable executor without
// depending on `dradio-sim` directly.
pub use dradio_sim::{
    AdversaryClass, BatchExecutor, RecordMode, TrialExecutor, TrialMetrics, MAX_LANES,
};
