//! Declarative problem and algorithm specifications.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_core::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
use dradio_graphs::NodeId;
use dradio_sim::{Assignment, History, StopCondition};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::{Result, ScenarioError};
use crate::topology::BuiltTopology;

/// Both problems of [`dradio_core::problem`], as pure serializable values.
///
/// A problem resolves — against a concrete topology — to the role
/// [`Assignment`], the [`StopCondition`] and the correctness verifier the
/// simulator needs.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSpec {
    /// Global broadcast from the given source node index.
    GlobalFrom(usize),
    /// Local broadcast from an explicit broadcaster set (node indices).
    Local {
        /// The broadcaster set `B`.
        broadcasters: Vec<usize>,
    },
    /// Local broadcast from `count` broadcasters sampled uniformly (without
    /// replacement) using the given dedicated seed.
    LocalRandom {
        /// Number of broadcasters to sample.
        count: usize,
        /// Seed of the sampling stream (independent of the execution seed).
        seed: u64,
    },
    /// Local broadcast from side A of a dual clique (requires a
    /// [`TopologySpec::DualCliqueWithBridge`](crate::TopologySpec::DualCliqueWithBridge)
    /// topology).
    LocalSideA,
    /// Local broadcast from the band heads of side A of a bracelet (requires
    /// a bracelet topology).
    LocalHeadsA,
}

serde::serde_enum!(ProblemSpec {
    GlobalFrom(usize),
    Local { broadcasters: Vec<usize> },
    LocalRandom { count: usize, seed: u64 },
    LocalSideA,
    LocalHeadsA,
});

impl ProblemSpec {
    /// A short human-readable label for tables and traces.
    pub fn label(&self) -> String {
        match self {
            ProblemSpec::GlobalFrom(source) => format!("global-from({source})"),
            ProblemSpec::Local { broadcasters } => format!("local({} nodes)", broadcasters.len()),
            ProblemSpec::LocalRandom { count, seed } => {
                format!("local-random({count}, seed {seed})")
            }
            ProblemSpec::LocalSideA => "local-side-a".into(),
            ProblemSpec::LocalHeadsA => "local-heads-a".into(),
        }
    }

    /// Returns `true` for the global broadcast problem.
    pub fn is_global(&self) -> bool {
        matches!(self, ProblemSpec::GlobalFrom(_))
    }

    /// Resolves the spec against a topology.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Incompatible`] if the spec needs construction
    /// metadata the topology does not carry, or references out-of-range
    /// nodes.
    pub fn resolve(&self, topology: &BuiltTopology) -> Result<ResolvedProblem> {
        let n = topology.len();
        let out_of_range = |what: &str, index: usize| ScenarioError::Incompatible {
            reason: format!("{what} {index} is out of range for the {n}-node network"),
        };
        match self {
            ProblemSpec::GlobalFrom(source) => {
                if *source >= n {
                    return Err(out_of_range("global broadcast source", *source));
                }
                Ok(ResolvedProblem::Global(GlobalBroadcastProblem::new(
                    NodeId::new(*source),
                )))
            }
            ProblemSpec::Local { broadcasters } => {
                if let Some(&bad) = broadcasters.iter().find(|&&b| b >= n) {
                    return Err(out_of_range("broadcaster", bad));
                }
                let nodes: Vec<NodeId> = broadcasters.iter().map(|&b| NodeId::new(b)).collect();
                Ok(ResolvedProblem::Local(LocalBroadcastProblem::new(nodes)))
            }
            ProblemSpec::LocalRandom { count, seed } => {
                if *count > n {
                    return Err(ScenarioError::Incompatible {
                        reason: format!("cannot sample {count} broadcasters from {n} nodes"),
                    });
                }
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                Ok(ResolvedProblem::Local(LocalBroadcastProblem::random(
                    &topology.dual,
                    *count,
                    &mut rng,
                )))
            }
            ProblemSpec::LocalSideA => {
                let dc =
                    topology
                        .dual_clique
                        .as_ref()
                        .ok_or_else(|| ScenarioError::Incompatible {
                            reason:
                                "the side-A broadcaster set needs a dual clique topology built \
                                 with an explicit bridge"
                                    .into(),
                        })?;
                Ok(ResolvedProblem::Local(LocalBroadcastProblem::new(
                    dc.side_a().to_vec(),
                )))
            }
            ProblemSpec::LocalHeadsA => {
                let bracelet =
                    topology
                        .bracelet
                        .as_ref()
                        .ok_or_else(|| ScenarioError::Incompatible {
                            reason: "the heads-of-side-A broadcaster set needs a bracelet topology"
                                .into(),
                        })?;
                Ok(ResolvedProblem::Local(LocalBroadcastProblem::new(
                    bracelet.heads_a(),
                )))
            }
        }
    }
}

/// A problem resolved against a concrete topology.
#[derive(Debug, Clone)]
pub enum ResolvedProblem {
    /// A global broadcast problem.
    Global(GlobalBroadcastProblem),
    /// A local broadcast problem.
    Local(LocalBroadcastProblem),
}

impl ResolvedProblem {
    /// The role assignment for the given topology.
    pub fn assignment(&self, topology: &BuiltTopology) -> Assignment {
        match self {
            ResolvedProblem::Global(p) => p.assignment(topology.len()),
            ResolvedProblem::Local(p) => p.assignment(topology.len()),
        }
    }

    /// The completion condition for the given topology.
    pub fn stop_condition(&self, topology: &BuiltTopology) -> StopCondition {
        match self {
            ResolvedProblem::Global(p) => p.stop_condition(),
            ResolvedProblem::Local(p) => p.stop_condition(&topology.dual),
        }
    }

    /// Checks the recorded history against the problem's correctness
    /// criterion.
    pub fn verify(&self, topology: &BuiltTopology, history: &History) -> bool {
        match self {
            ResolvedProblem::Global(p) => p.verify(&topology.dual, history),
            ResolvedProblem::Local(p) => p.verify(&topology.dual, history),
        }
    }
}

/// A broadcast algorithm: one of the registry enums of
/// [`dradio_core::algorithms`].
///
/// Global algorithms pair with [`ProblemSpec::GlobalFrom`]; local algorithms
/// pair with the local problems. [`ScenarioBuilder::build`] rejects
/// mismatches.
///
/// [`ScenarioBuilder::build`]: crate::ScenarioBuilder::build
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// A global (source-to-all) broadcast algorithm.
    Global(GlobalAlgorithm),
    /// A local (to-all-neighbors) broadcast algorithm.
    Local(LocalAlgorithm),
    /// A process factory supplied directly through
    /// [`ScenarioBuilder::custom_algorithm`](crate::ScenarioBuilder::custom_algorithm).
    ///
    /// The name is recorded for serialized specs; the factory itself is not
    /// serialized, so building a deserialized `Custom` spec fails with
    /// [`ScenarioError::CustomUnavailable`](crate::ScenarioError::CustomUnavailable)
    /// unless re-attached.
    Custom {
        /// Descriptive name of the attached algorithm.
        name: String,
    },
}

serde::serde_enum!(AlgorithmSpec {
    Global(GlobalAlgorithm),
    Local(LocalAlgorithm),
    Custom { name: String },
});

impl AlgorithmSpec {
    /// Short name used in tables.
    pub fn name(&self) -> &str {
        match self {
            AlgorithmSpec::Global(a) => a.name(),
            AlgorithmSpec::Local(a) => a.name(),
            AlgorithmSpec::Custom { name } => name,
        }
    }

    /// Whether the algorithm targets the global problem (`None` when the
    /// spec is custom and its problem kind is unknown).
    pub fn is_global(&self) -> Option<bool> {
        match self {
            AlgorithmSpec::Global(_) => Some(true),
            AlgorithmSpec::Local(_) => Some(false),
            AlgorithmSpec::Custom { .. } => None,
        }
    }

    /// Builds the process factory for a network with `n` nodes and maximum
    /// degree `max_degree`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::CustomUnavailable`] for [`AlgorithmSpec::Custom`]:
    /// custom factories live on the builder, not on the spec.
    pub fn factory(&self, n: usize, max_degree: usize) -> Result<dradio_sim::ProcessFactory> {
        match self {
            AlgorithmSpec::Global(a) => Ok(a.factory(n, max_degree)),
            AlgorithmSpec::Local(a) => Ok(a.factory(n, max_degree)),
            AlgorithmSpec::Custom { .. } => {
                Err(ScenarioError::CustomUnavailable { what: "algorithm" })
            }
        }
    }
}

impl From<GlobalAlgorithm> for AlgorithmSpec {
    fn from(a: GlobalAlgorithm) -> Self {
        AlgorithmSpec::Global(a)
    }
}

impl From<LocalAlgorithm> for AlgorithmSpec {
    fn from(a: LocalAlgorithm) -> Self {
        AlgorithmSpec::Local(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologySpec;

    #[test]
    fn global_problem_resolves_with_assignment_and_stop() {
        let topo = TopologySpec::DualClique { n: 8 }.build().unwrap();
        let resolved = ProblemSpec::GlobalFrom(0).resolve(&topo).unwrap();
        let assignment = resolved.assignment(&topo);
        assert_eq!(assignment.source(), Some(NodeId::new(0)));
        assert!(resolved.stop_condition(&topo).max_node_index().is_some());
    }

    #[test]
    fn out_of_range_problems_are_rejected() {
        let topo = TopologySpec::Line { n: 4 }.build().unwrap();
        assert!(ProblemSpec::GlobalFrom(4).resolve(&topo).is_err());
        assert!(ProblemSpec::Local {
            broadcasters: vec![0, 9]
        }
        .resolve(&topo)
        .is_err());
        assert!(ProblemSpec::LocalRandom { count: 5, seed: 0 }
            .resolve(&topo)
            .is_err());
    }

    #[test]
    fn metadata_problems_need_their_topology() {
        let line = TopologySpec::Line { n: 4 }.build().unwrap();
        assert!(ProblemSpec::LocalSideA.resolve(&line).is_err());
        assert!(ProblemSpec::LocalHeadsA.resolve(&line).is_err());

        let dc = TopologySpec::DualCliqueWithBridge {
            n: 8,
            t_a: 0,
            t_b: 4,
        }
        .build()
        .unwrap();
        match ProblemSpec::LocalSideA.resolve(&dc).unwrap() {
            ResolvedProblem::Local(p) => assert_eq!(p.broadcasters().len(), 4),
            other => panic!("unexpected {other:?}"),
        }

        let bracelet = TopologySpec::Bracelet { k: 3 }.build().unwrap();
        match ProblemSpec::LocalHeadsA.resolve(&bracelet).unwrap() {
            ResolvedProblem::Local(p) => assert_eq!(p.broadcasters().len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn random_broadcasters_are_reproducible_from_the_spec_seed() {
        let topo = TopologySpec::Clique { n: 20 }.build().unwrap();
        let spec = ProblemSpec::LocalRandom { count: 6, seed: 9 };
        let a = match spec.resolve(&topo).unwrap() {
            ResolvedProblem::Local(p) => p.broadcasters().to_vec(),
            other => panic!("unexpected {other:?}"),
        };
        let b = match spec.resolve(&topo).unwrap() {
            ResolvedProblem::Local(p) => p.broadcasters().to_vec(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn algorithm_spec_converts_and_names() {
        let g: AlgorithmSpec = GlobalAlgorithm::Permuted.into();
        assert_eq!(g.is_global(), Some(true));
        assert_eq!(g.name(), "permuted-decay");
        assert!(g.factory(8, 4).is_ok());
        let l: AlgorithmSpec = LocalAlgorithm::Geo.into();
        assert_eq!(l.is_global(), Some(false));
        assert_eq!(l.name(), "geo-seeded");
        let c = AlgorithmSpec::Custom {
            name: "shared-decay".into(),
        };
        assert_eq!(c.is_global(), None);
        assert!(c.factory(8, 4).is_err());
    }

    #[test]
    fn specs_round_trip_through_serde() {
        let specs = vec![
            ProblemSpec::GlobalFrom(3),
            ProblemSpec::Local {
                broadcasters: vec![1, 2],
            },
            ProblemSpec::LocalRandom { count: 4, seed: 8 },
            ProblemSpec::LocalSideA,
            ProblemSpec::LocalHeadsA,
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ProblemSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
        let algo: AlgorithmSpec = LocalAlgorithm::Uniform.into();
        let back: AlgorithmSpec =
            serde_json::from_str(&serde_json::to_string(&algo).unwrap()).unwrap();
        assert_eq!(algo, back);
    }
}
