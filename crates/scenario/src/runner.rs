//! Running many independent trials of a scenario, in parallel.
//!
//! Trial `t` derives its master seed from the scenario seed with the same
//! splitmix64 finalizer the engine uses for per-node streams
//! ([`dradio_sim::derive_stream_seed`]), so:
//!
//! * trials are statistically independent (adjacent trial indices give
//!   uncorrelated streams), and
//! * the result depends only on `(scenario spec, trial count)` — never on
//!   thread scheduling. The parallel and sequential modes produce identical
//!   [`Measurement`]s.
//!
//! # The trial-seed derivation contract
//!
//! ```text
//! trial_seed(t) = derive_stream_seed(scenario.seed, TRIAL_STREAM_BASE ^ t)
//! ```
//!
//! where [`derive_stream_seed`] is the engine's splitmix64 finalizer and
//! [`TRIAL_STREAM_BASE`] is the fixed constant `0x5CE7_AB10_0000_0000`. This
//! is a **stable, persistence-facing contract**, not an implementation
//! detail: campaign result stores (`dradio-campaign`) persist only the cell's
//! [`ScenarioSpec`](crate::ScenarioSpec) and trial count, and a resumed
//! campaign must regenerate exactly the seeds a fresh run would use for the
//! still-missing cells — otherwise "partial run + resume" and "one
//! uninterrupted run" would diverge. Changing the constant or the finalizer
//! invalidates every stored measurement; tests in this module and in
//! `dradio-campaign` pin the derivation.

use dradio_sim::{derive_stream_seed, RecordMode, TrialExecutor};
use rayon::prelude::*;

use serde::{Deserialize, Serialize, Value};

use crate::error::{Result, ScenarioError};
use crate::scenario::Scenario;
use crate::stats::Summary;

/// The measured outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Trial index within the batch.
    pub trial: usize,
    /// The derived master seed the trial ran with.
    pub seed: u64,
    /// Rounds to completion, or the round budget if censored.
    pub cost: usize,
    /// Whether the stop condition was met within the budget.
    pub completed: bool,
    /// Collisions observed during the trial.
    pub collisions: usize,
}

/// Summary of a batch of independent trials.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Summary of per-trial costs (completion round, or the budget for
    /// censored trials).
    pub rounds: Summary,
    /// Fraction of trials that completed within the budget.
    pub completion_rate: f64,
    /// Mean number of collisions per trial (a contention diagnostic).
    pub mean_collisions: f64,
}

impl Serialize for Measurement {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("rounds".into(), self.rounds.to_value()),
            ("completion_rate".into(), self.completion_rate.to_value()),
            ("mean_collisions".into(), self.mean_collisions.to_value()),
        ])
    }
}

impl Deserialize for Measurement {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("Measurement is missing {name:?}")))
        };
        Ok(Measurement {
            rounds: Summary::from_value(field("rounds")?)?,
            completion_rate: f64::from_value(field("completion_rate")?)?,
            mean_collisions: f64::from_value(field("mean_collisions")?)?,
        })
    }
}

impl Measurement {
    /// Aggregates trial outcomes.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] for an empty batch: an empty measurement
    /// has no meaningful mean, so the zero-trial case is an explicit error
    /// rather than a silently guarded division.
    pub fn from_trials(trials: &[TrialOutcome]) -> Result<Self> {
        if trials.is_empty() {
            return Err(ScenarioError::NoTrials);
        }
        // One streaming pass: the completion and collision tallies ride
        // along while the costs flow into the summary's single buffer (the
        // one the order statistics later sort; no further intermediates).
        let mut completed = 0usize;
        let mut collisions = 0usize;
        let mut costs: Vec<f64> = Vec::with_capacity(trials.len());
        for trial in trials {
            completed += usize::from(trial.completed);
            collisions += trial.collisions;
            costs.push(trial.cost as f64);
        }
        Ok(Measurement {
            rounds: Summary::from_iter(costs),
            completion_rate: completed as f64 / trials.len() as f64,
            mean_collisions: collisions as f64 / trials.len() as f64,
        })
    }
}

/// Stream index offsetting trial seeds from the engine's internal per-node
/// streams (which start at 0 for the *derived* seed, not the scenario seed —
/// but a distinct constant keeps the two families visibly separate in traces
/// and guards against accidental reuse of trial 0 ≡ scenario seed).
///
/// Part of the persistence contract documented at the [module level](self):
/// campaign result stores assume `trial_seed(t)` is reproducible from the
/// serialized scenario spec alone, so this constant must never change.
pub const TRIAL_STREAM_BASE: u64 = 0x5CE7_AB10_0000_0000;

/// Runs independent trials of a [`Scenario`] and summarizes the costs.
///
/// Parallel by default: trials fan out across the rayon thread pool. Because
/// each trial's seed is derived from its index, the aggregation is
/// deterministic — [`ScenarioRunner::sequential`] produces the identical
/// [`Measurement`] and exists for verification and single-threaded
/// environments.
///
/// Trials run with [`RecordMode::None`] by default: a [`TrialOutcome`] keeps
/// only the cost, completion flag, and collision count, so the engine skips
/// history recording entirely. The measured quantities are identical under
/// every mode (the engine's behaviour does not depend on what it retains,
/// and adaptive adversaries auto-promote to full recording), which the crate
/// tests pin; use [`ScenarioRunner::record_mode`] to opt back into retained
/// histories when debugging.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner<'a> {
    scenario: &'a Scenario,
    parallel: bool,
    record_mode: RecordMode,
}

impl<'a> ScenarioRunner<'a> {
    /// Creates a parallel, history-free runner over `scenario`.
    pub fn new(scenario: &'a Scenario) -> Self {
        ScenarioRunner {
            scenario,
            parallel: true,
            record_mode: RecordMode::None,
        }
    }

    /// Switches the runner to sequential (in-thread) execution.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Overrides the record mode trials run with (default
    /// [`RecordMode::None`]; measurements are identical under every mode).
    pub fn record_mode(mut self, record_mode: RecordMode) -> Self {
        self.record_mode = record_mode;
        self
    }

    /// The master seed trial `t` runs with.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        derive_stream_seed(self.scenario.seed(), TRIAL_STREAM_BASE ^ trial as u64)
    }

    /// A reusable [`TrialExecutor`] over the scenario (see
    /// [`Scenario::executor`]). The fan-out paths create one per worker and
    /// run every trial of that worker through it; results are identical to
    /// one fresh simulator per trial, just without the per-trial setup.
    pub fn executor(&self) -> TrialExecutor {
        self.scenario.executor()
    }

    /// Runs one trial by index (a fresh single-shot execution; for many
    /// trials prefer [`ScenarioRunner::run_trial_on`] with a reused
    /// executor — the outcomes are identical).
    pub fn run_trial(&self, trial: usize) -> TrialOutcome {
        let seed = self.trial_seed(trial);
        let outcome = self.scenario.run_with(seed, self.record_mode);
        TrialOutcome {
            trial,
            seed,
            cost: outcome.cost(),
            completed: outcome.completed,
            collisions: outcome.metrics.collisions,
        }
    }

    /// Runs one trial by index on a reused executor.
    pub fn run_trial_on(&self, executor: &mut TrialExecutor, trial: usize) -> TrialOutcome {
        let seed = self.trial_seed(trial);
        let outcome = executor.execute(seed, self.record_mode);
        TrialOutcome {
            trial,
            seed,
            cost: outcome.cost(),
            completed: outcome.completed,
            collisions: outcome.metrics.collisions,
        }
    }

    /// Runs `trials` independent trials and returns their outcomes in trial
    /// order.
    ///
    /// Each worker (one in sequential mode) builds a single [`TrialExecutor`]
    /// and reuses it for all its trials, so the per-trial cost is the
    /// execution itself — no network copy, no scratch reallocation, no
    /// process-vector growth. Outcomes depend only on the trial index, never
    /// on which worker (or executor) ran a trial.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] if `trials` is zero.
    pub fn collect_trials(&self, trials: usize) -> Result<Vec<TrialOutcome>> {
        if trials == 0 {
            return Err(ScenarioError::NoTrials);
        }
        let outcomes: Vec<TrialOutcome> = if self.parallel {
            (0..trials)
                .into_par_iter()
                .map_init(
                    || self.executor(),
                    |executor, t| self.run_trial_on(executor, t),
                )
                .collect()
        } else {
            let mut executor = self.executor();
            (0..trials)
                .map(|t| self.run_trial_on(&mut executor, t))
                .collect()
        };
        Ok(outcomes)
    }

    /// Runs `trials` independent trials and summarizes them.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] if `trials` is zero.
    pub fn run_trials(&self, trials: usize) -> Result<Measurement> {
        Measurement::from_trials(&self.collect_trials(trials)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversarySpec;
    use crate::problem::ProblemSpec;
    use crate::topology::TopologySpec;
    use dradio_core::algorithms::GlobalAlgorithm;

    fn scenario(seed: u64) -> Scenario {
        Scenario::on(TopologySpec::DualClique { n: 16 })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(AdversarySpec::Iid { p: 0.5 })
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(20_000)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn zero_trials_is_an_explicit_error() {
        let s = scenario(1);
        assert!(matches!(s.run_trials(0), Err(ScenarioError::NoTrials)));
        assert!(matches!(
            Measurement::from_trials(&[]),
            Err(ScenarioError::NoTrials)
        ));
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = scenario(5);
        let runner = ScenarioRunner::new(&s);
        let parallel = runner.run_trials(6).unwrap();
        let sequential = runner.sequential().run_trials(6).unwrap();
        assert_eq!(parallel, sequential);
        // Trial-level outcomes agree too, in order.
        assert_eq!(
            runner.collect_trials(6).unwrap(),
            runner.sequential().collect_trials(6).unwrap()
        );
    }

    #[test]
    fn reused_executor_trials_match_one_shot_trials() {
        let s = scenario(21);
        let runner = ScenarioRunner::new(&s);
        let mut executor = runner.executor();
        for t in 0..6 {
            assert_eq!(
                runner.run_trial_on(&mut executor, t),
                runner.run_trial(t),
                "trial {t} diverged between the reused executor and a fresh simulator"
            );
        }
        // Out-of-order and repeated trials reproduce too: outcomes depend on
        // the trial index only, never on executor history.
        for t in [3usize, 0, 5, 3] {
            assert_eq!(runner.run_trial_on(&mut executor, t), runner.run_trial(t));
        }
    }

    #[test]
    fn measurements_are_deterministic_per_seed() {
        let a = scenario(9).run_trials(4).unwrap();
        let b = scenario(9).run_trials(4).unwrap();
        assert_eq!(a, b);
        let c = scenario(10).run_trials(4).unwrap();
        assert_ne!(
            a.rounds, c.rounds,
            "different scenario seeds should diverge"
        );
    }

    #[test]
    fn trial_seeds_are_distinct_and_derived() {
        let s = scenario(2);
        let runner = ScenarioRunner::new(&s);
        let seeds: Vec<u64> = (0..16).map(|t| runner.trial_seed(t)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "trial seeds must not collide");
        assert!(
            !seeds.contains(&s.seed()),
            "trial seeds differ from the scenario seed"
        );
    }

    /// Pins the module-level trial-seed derivation contract: the exact
    /// constant and finalizer that campaign result stores depend on. If this
    /// test needs editing, every persisted store is invalidated — bump a
    /// store format version instead of silently changing the derivation.
    #[test]
    fn trial_seed_contract_is_pinned() {
        // An independent splitmix64-finalizer reimplementation.
        fn finalize(master: u64, stream: u64) -> u64 {
            let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let s = scenario(0xFEED);
        let runner = ScenarioRunner::new(&s);
        for t in 0..32 {
            assert_eq!(
                runner.trial_seed(t),
                finalize(0xFEED, TRIAL_STREAM_BASE ^ t as u64),
                "trial {t} seed diverged from the documented derivation"
            );
        }
        // And one literal value, so even a coordinated change to both sides
        // of the equation above cannot slip through unnoticed.
        assert_eq!(
            runner.trial_seed(0),
            finalize(0xFEED, 0x5CE7_AB10_0000_0000)
        );
    }

    #[test]
    fn record_modes_do_not_change_measurements() {
        let s = scenario(13);
        let runner = ScenarioRunner::new(&s);
        let fast = runner.run_trials(6).unwrap();
        let full = runner.record_mode(RecordMode::Full).run_trials(6).unwrap();
        let collisions_only = runner
            .record_mode(RecordMode::CollisionsOnly)
            .run_trials(6)
            .unwrap();
        assert_eq!(fast, full);
        assert_eq!(fast, collisions_only);
        assert_eq!(
            runner.collect_trials(6).unwrap(),
            runner
                .record_mode(RecordMode::Full)
                .collect_trials(6)
                .unwrap()
        );
    }

    #[test]
    fn measurement_serde_round_trips() {
        let m = scenario(3).run_trials(4).unwrap();
        let back = Measurement::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn measurement_aggregates_counts() {
        let trials = vec![
            TrialOutcome {
                trial: 0,
                seed: 1,
                cost: 10,
                completed: true,
                collisions: 4,
            },
            TrialOutcome {
                trial: 1,
                seed: 2,
                cost: 20,
                completed: false,
                collisions: 6,
            },
        ];
        let m = Measurement::from_trials(&trials).unwrap();
        assert_eq!(m.rounds.count, 2);
        assert_eq!(m.rounds.mean, 15.0);
        assert_eq!(m.completion_rate, 0.5);
        assert_eq!(m.mean_collisions, 5.0);
    }
}
