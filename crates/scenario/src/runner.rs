//! Running many independent trials of a scenario, in parallel, and
//! aggregating them into a typed, multi-statistic [`Measurement`].
//!
//! Trial `t` derives its master seed from the scenario seed with the same
//! splitmix64 finalizer the engine uses for per-node streams
//! ([`dradio_sim::derive_stream_seed`]), so:
//!
//! * trials are statistically independent (adjacent trial indices give
//!   uncorrelated streams), and
//! * the result depends only on `(scenario spec, trial count)` — never on
//!   thread scheduling. The parallel and sequential modes produce identical
//!   [`Measurement`]s.
//!
//! # The measurement pipeline
//!
//! One trial boils down to a [`TrialMetrics`] (the engine's typed per-trial
//! measurement: cost, completion flag, aggregate collisions, optional
//! per-round collision curve), wrapped with its index and seed as a
//! [`TrialOutcome`]. A batch aggregates through a [`TrialAccumulator`] into
//! a [`Measurement`] holding named statistics: the rounds [`Summary`], a
//! Wilson-interval [`Completion`] rate, the mean collision count, and — when
//! requested via [`ScenarioRunner::curve`] — a mean contention-over-time
//! [`ContentionCurve`] streamed one trial at a time (per-round Welford
//! moments; no per-trial curve is ever retained by the runner).
//!
//! # The trial-seed derivation contract
//!
//! ```text
//! trial_seed(t) = derive_stream_seed(scenario.seed, TRIAL_STREAM_BASE ^ t)
//! ```
//!
//! where [`derive_stream_seed`] is the engine's splitmix64 finalizer and
//! [`TRIAL_STREAM_BASE`] is the fixed constant `0x5CE7_AB10_0000_0000`. This
//! is a **stable, persistence-facing contract**, not an implementation
//! detail: campaign result stores (`dradio-campaign`) persist only the cell's
//! [`ScenarioSpec`](crate::ScenarioSpec) and trial count, and a resumed
//! campaign must regenerate exactly the seeds a fresh run would use for the
//! still-missing cells — otherwise "partial run + resume" and "one
//! uninterrupted run" would diverge. Changing the constant or the finalizer
//! invalidates every stored measurement; tests in this module and in
//! `dradio-campaign` pin the derivation.

use dradio_sim::{
    derive_stream_seed, BatchExecutor, RecordMode, TrialExecutor, TrialMetrics, MAX_LANES,
};
use rayon::prelude::*;

use serde::{Deserialize, Serialize, Value};

use crate::error::{Result, ScenarioError};
use crate::scenario::Scenario;
use crate::stats::{Completion, ContentionCurve, Moments, Summary};

/// The measured outcome of one trial: the typed [`TrialMetrics`] plus its
/// position in the batch.
///
/// Outcomes handed out by the runner carry scalar metrics only
/// ([`TrialMetrics::collisions_per_round`] is `None`): per-round collision
/// curves are streamed into the batch's [`ContentionCurve`] as each trial
/// completes instead of being retained per trial, so outcomes stay
/// constant-size regardless of record mode — and compare equal across
/// modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Trial index within the batch.
    pub trial: usize,
    /// The derived master seed the trial ran with.
    pub seed: u64,
    /// The trial's typed measurement.
    pub metrics: TrialMetrics,
}

impl TrialOutcome {
    /// Rounds to completion, or the round budget if censored — the measured
    /// cost.
    pub fn cost(&self) -> usize {
        self.metrics.rounds
    }

    /// Whether the stop condition was met within the budget.
    pub fn completed(&self) -> bool {
        self.metrics.completed
    }

    /// Collisions observed during the trial.
    pub fn collisions(&self) -> usize {
        self.metrics.collisions
    }
}

/// Summary of a batch of independent trials: named statistics over the
/// per-trial [`TrialMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Summary of per-trial costs (completion round, or the budget for
    /// censored trials).
    pub rounds: Summary,
    /// Completion statistics (exact counts; Wilson-interval methods).
    pub completion: Completion,
    /// Mean number of collisions per trial (a contention diagnostic).
    pub mean_collisions: f64,
    /// Mean contention over time, when the batch was aggregated with curve
    /// streaming ([`ScenarioRunner::curve`]); `None` otherwise. Optional in
    /// the serialized form too, so measurements without a curve keep the
    /// exact pre-curve store bytes.
    pub contention: Option<ContentionCurve>,
}

impl Serialize for Measurement {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("rounds".into(), self.rounds.to_value()),
            ("completion_rate".into(), self.completion.rate().to_value()),
            ("mean_collisions".into(), self.mean_collisions.to_value()),
        ];
        if let Some(contention) = &self.contention {
            fields.push(("contention".into(), contention.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for Measurement {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("Measurement is missing {name:?}")))
        };
        let rounds = Summary::from_value(field("rounds")?)?;
        let completion_rate = f64::from_value(field("completion_rate")?)?;
        // The stored rate is exactly completed / trials with trials =
        // rounds.count, so the integer counts are recoverable; round() guards
        // the last-ULP of the division.
        let completion = Completion {
            completed: (completion_rate * rounds.count as f64).round() as usize,
            trials: rounds.count,
        };
        Ok(Measurement {
            rounds,
            completion,
            mean_collisions: f64::from_value(field("mean_collisions")?)?,
            contention: match value.get("contention") {
                Some(v) => Some(ContentionCurve::from_value(v)?),
                None => None,
            },
        })
    }
}

impl Measurement {
    /// The fraction of trials that completed within the budget (shorthand
    /// for `measurement.completion.rate()`, matching the serialized field).
    pub fn completion_rate(&self) -> f64 {
        self.completion.rate()
    }

    /// Aggregates scalar trial outcomes (no contention curve).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] for an empty batch: an empty measurement
    /// has no meaningful mean, so the zero-trial case is an explicit error
    /// rather than a silently guarded division.
    pub fn from_trials(trials: &[TrialOutcome]) -> Result<Self> {
        let mut acc = TrialAccumulator::new();
        for trial in trials {
            acc.push(&trial.metrics);
        }
        acc.finish()
    }
}

/// Streaming aggregation of [`TrialMetrics`] into a [`Measurement`].
///
/// Pushing a trial is O(1) in retained state beyond the cost buffer the
/// order statistics need: completion and collision tallies are integers, the
/// running cost [`Moments`] back the mean-cost adaptive stop rule, and —
/// with [`TrialAccumulator::with_curve`] — each trial's per-round collision
/// counts fold into the [`ContentionCurve`] and are dropped, so the
/// accumulator never holds more than one trial's curve at a time.
///
/// Trials must be pushed in trial-index order (every runner path does);
/// the curve and moments are then identical no matter which worker executed
/// which trial.
#[derive(Debug, Clone, Default)]
pub struct TrialAccumulator {
    costs: Vec<f64>,
    cost_moments: Moments,
    completed: usize,
    collisions: usize,
    contention: Option<ContentionCurve>,
}

impl TrialAccumulator {
    /// A scalar accumulator (no contention curve).
    pub fn new() -> Self {
        TrialAccumulator::default()
    }

    /// An accumulator that also streams per-round collision curves. Trials
    /// pushed into it should carry [`TrialMetrics::collisions_per_round`]
    /// (i.e. run under a collision-recording mode); a trial without one
    /// contributes an all-zero curve.
    pub fn with_curve() -> Self {
        TrialAccumulator {
            contention: Some(ContentionCurve::new()),
            ..TrialAccumulator::default()
        }
    }

    /// Folds one trial in (index order).
    pub fn push(&mut self, metrics: &TrialMetrics) {
        self.costs.push(metrics.rounds as f64);
        self.cost_moments.push(metrics.rounds as f64);
        self.completed += usize::from(metrics.completed);
        self.collisions += metrics.collisions;
        if let Some(contention) = &mut self.contention {
            contention.push_trial(metrics.collisions_per_round.as_deref().unwrap_or(&[]));
        }
    }

    /// Number of trials folded in.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Returns `true` if no trial was folded yet.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The running cost moments (count, mean, sample variance) — what the
    /// mean-cost adaptive stop rule reads after each doubling.
    pub fn cost_moments(&self) -> &Moments {
        &self.cost_moments
    }

    /// The completion counts so far — what the completion-targeted adaptive
    /// stop rule reads (via [`Completion::wilson_half_width`]).
    pub fn completion(&self) -> Completion {
        Completion {
            completed: self.completed,
            trials: self.costs.len(),
        }
    }

    /// Finishes the batch into a [`Measurement`]. The rounds [`Summary`] is
    /// computed from the full cost buffer (numerically identical to
    /// [`Measurement::from_trials`] over the same outcomes).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] if the batch is empty.
    pub fn finish(self) -> Result<Measurement> {
        if self.costs.is_empty() {
            return Err(ScenarioError::NoTrials);
        }
        let trials = self.costs.len();
        Ok(Measurement {
            rounds: Summary::from_iter(self.costs),
            completion: Completion {
                completed: self.completed,
                trials,
            },
            mean_collisions: self.collisions as f64 / trials as f64,
            contention: self.contention,
        })
    }
}

/// Stream index offsetting trial seeds from the engine's internal per-node
/// streams (which start at 0 for the *derived* seed, not the scenario seed —
/// but a distinct constant keeps the two families visibly separate in traces
/// and guards against accidental reuse of trial 0 ≡ scenario seed).
///
/// Part of the persistence contract documented at the [module level](self):
/// campaign result stores assume `trial_seed(t)` is reproducible from the
/// serialized scenario spec alone, so this constant must never change.
pub const TRIAL_STREAM_BASE: u64 = 0x5CE7_AB10_0000_0000;

/// Runs independent trials of a [`Scenario`] and summarizes the costs.
///
/// Parallel by default: trials fan out across the rayon thread pool. Because
/// each trial's seed is derived from its index, the aggregation is
/// deterministic — [`ScenarioRunner::sequential`] produces the identical
/// [`Measurement`] and exists for verification and single-threaded
/// environments.
///
/// Trials run with [`RecordMode::None`] by default: a [`TrialOutcome`] keeps
/// only the cost, completion flag, and collision count, so the engine skips
/// history recording entirely. The measured quantities are identical under
/// every mode (the engine's behaviour does not depend on what it retains,
/// and adaptive adversaries auto-promote to full recording), which the crate
/// tests pin; use [`ScenarioRunner::record_mode`] to opt back into retained
/// histories when debugging, or [`ScenarioRunner::curve`] to stream a
/// contention-over-time curve into the measurement.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner<'a> {
    scenario: &'a Scenario,
    parallel: bool,
    record_mode: RecordMode,
    curve: bool,
    batch: bool,
}

impl<'a> ScenarioRunner<'a> {
    /// Creates a parallel, history-free runner over `scenario`.
    pub fn new(scenario: &'a Scenario) -> Self {
        ScenarioRunner {
            scenario,
            parallel: true,
            record_mode: RecordMode::None,
            curve: false,
            batch: false,
        }
    }

    /// Switches the runner to sequential (in-thread) execution.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Overrides the record mode trials run with (default
    /// [`RecordMode::None`]; measurements are identical under every mode).
    pub fn record_mode(mut self, record_mode: RecordMode) -> Self {
        self.record_mode = record_mode;
        self
    }

    /// Requests a mean contention-over-time curve in the measurement.
    ///
    /// A runner with a curve auto-promotes [`RecordMode::None`] to
    /// [`RecordMode::CollisionsOnly`] (per-round counts are needed; full
    /// history is not) and aggregates trials **sequentially**, streaming each
    /// trial's collision curve into the shared [`ContentionCurve`] the moment
    /// the trial finishes — the runner never holds more than one per-trial
    /// curve. Every scalar statistic is identical with and without the curve
    /// (same trial seeds, same engine behaviour), which the crate tests pin.
    pub fn curve(mut self, enabled: bool) -> Self {
        self.curve = enabled;
        self
    }

    /// Whether this runner streams a contention curve.
    pub fn has_curve(&self) -> bool {
        self.curve
    }

    /// Requests bit-sliced batch execution: trials fan out in lane groups of
    /// up to [`MAX_LANES`] through a [`BatchExecutor`], each group advancing
    /// all its live trials one round per word pass.
    ///
    /// The batch path is a pure execution strategy, never a semantics change:
    /// lane `k` of a group produces bit-for-bit the outcome the scalar
    /// executor produces for the same trial index, so every statistic —
    /// measurements, curves, persisted stores — is identical with and without
    /// it. Scenarios that cannot batch (adaptive or custom adversaries,
    /// history-recording modes) silently fall back to the scalar path; see
    /// [`ScenarioRunner::uses_batch`].
    pub fn batch(mut self, enabled: bool) -> Self {
        self.batch = enabled;
        self
    }

    /// Whether batch execution was requested (regardless of batchability).
    pub fn has_batch(&self) -> bool {
        self.batch
    }

    /// Whether the trial fan-out will actually run bit-sliced: batch was
    /// requested and the scenario is batchable under the effective record
    /// mode ([`Scenario::is_batchable`]).
    pub fn uses_batch(&self) -> bool {
        self.batch && self.scenario.is_batchable(self.effective_record_mode())
    }

    /// The record mode trials actually execute with: the configured mode,
    /// promoted to [`RecordMode::CollisionsOnly`] when a curve is requested
    /// and the mode retains no collisions.
    pub fn effective_record_mode(&self) -> RecordMode {
        if self.curve && !self.record_mode.records_collisions() {
            RecordMode::CollisionsOnly
        } else {
            self.record_mode
        }
    }

    /// The master seed trial `t` runs with.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        derive_stream_seed(self.scenario.seed(), TRIAL_STREAM_BASE ^ trial as u64)
    }

    /// A reusable [`TrialExecutor`] over the scenario (see
    /// [`Scenario::executor`]). The fan-out paths create one per worker and
    /// run every trial of that worker through it; results are identical to
    /// one fresh simulator per trial, just without the per-trial setup.
    pub fn executor(&self) -> TrialExecutor {
        self.scenario.executor()
    }

    /// The [`BatchExecutor`] the fan-out will use, when the batch path is
    /// both requested and possible: [`ScenarioRunner::uses_batch`] must hold
    /// and the scenario's actual link process must pass the executor's own
    /// obliviousness check. `None` means the scalar path runs instead.
    fn batch_executor_if_usable(&self) -> Option<BatchExecutor> {
        if !self.uses_batch() {
            return None;
        }
        self.scenario.batch_executor().ok()
    }

    /// Runs one lane group — trials `start..start + seeds.len()` — on a
    /// reused batch executor, in trial order.
    fn run_group_on(
        &self,
        executor: &mut BatchExecutor,
        start: usize,
        seeds: &[u64],
    ) -> Vec<TrialOutcome> {
        let outcomes = executor
            .execute_group(seeds, self.effective_record_mode())
            // lint: allow(D4) -- an identical construction was probed when the batch path was selected
            .expect("group batchability was verified when the batch path was selected");
        outcomes
            .into_iter()
            .zip(seeds)
            .enumerate()
            .map(|(k, (outcome, &seed))| TrialOutcome {
                trial: start + k,
                seed,
                metrics: outcome.into_trial_metrics().without_curve(),
            })
            .collect()
    }

    /// The lane-group decomposition of a batch of `trials`: `(start, seeds)`
    /// pairs covering `0..trials` in order, each at most [`MAX_LANES`] wide.
    fn lane_groups(&self, trials: usize) -> Vec<(usize, Vec<u64>)> {
        (0..trials)
            .step_by(MAX_LANES)
            .map(|start| {
                let end = usize::min(start + MAX_LANES, trials);
                (start, (start..end).map(|t| self.trial_seed(t)).collect())
            })
            .collect()
    }

    /// The bit-sliced analogue of the scalar fan-out in
    /// [`collect_trials`](ScenarioRunner::collect_trials): lane groups fan
    /// out across the rayon pool (one reused batch executor per worker), and
    /// the per-group outcome vectors concatenate back into trial order.
    fn collect_trials_batched(&self, mut first: BatchExecutor, trials: usize) -> Vec<TrialOutcome> {
        let groups = self.lane_groups(trials);
        let per_group: Vec<Vec<TrialOutcome>> = if self.parallel {
            (0..groups.len())
                .into_par_iter()
                .map_init(
                    || {
                        self.scenario
                            .batch_executor()
                            // lint: allow(D4) -- an identical construction was probed when the batch path was selected
                            .expect("an identical batch executor was constructed moments ago")
                    },
                    |executor, g| {
                        let (start, seeds) = &groups[g];
                        self.run_group_on(executor, *start, seeds)
                    },
                )
                .collect()
        } else {
            groups
                .into_iter()
                .map(|(start, seeds)| self.run_group_on(&mut first, start, &seeds))
                .collect()
        };
        per_group.concat()
    }

    /// Runs one trial by index (a fresh single-shot execution; for many
    /// trials prefer [`ScenarioRunner::run_trial_on`] with a reused
    /// executor — the outcomes are identical).
    pub fn run_trial(&self, trial: usize) -> TrialOutcome {
        let seed = self.trial_seed(trial);
        let outcome = self.scenario.run_with(seed, self.effective_record_mode());
        TrialOutcome {
            trial,
            seed,
            metrics: outcome.into_trial_metrics().without_curve(),
        }
    }

    /// Runs one trial by index on a reused executor.
    pub fn run_trial_on(&self, executor: &mut TrialExecutor, trial: usize) -> TrialOutcome {
        let seed = self.trial_seed(trial);
        let outcome = executor.execute(seed, self.effective_record_mode());
        TrialOutcome {
            trial,
            seed,
            metrics: outcome.into_trial_metrics().without_curve(),
        }
    }

    /// Runs one trial by index on a reused executor and folds its full
    /// [`TrialMetrics`] — including the collision curve, when recorded —
    /// into `acc`, returning the scalar outcome. The streaming primitive
    /// behind curve-carrying measurements; the campaign engine drives it
    /// directly for adaptive cells.
    pub fn run_trial_into(
        &self,
        executor: &mut TrialExecutor,
        trial: usize,
        acc: &mut TrialAccumulator,
    ) -> TrialOutcome {
        let seed = self.trial_seed(trial);
        let metrics = executor
            .execute(seed, self.effective_record_mode())
            .into_trial_metrics();
        acc.push(&metrics);
        TrialOutcome {
            trial,
            seed,
            metrics: metrics.without_curve(),
        }
    }

    /// The accumulator matching this runner's configuration (curve-streaming
    /// when [`ScenarioRunner::curve`] is set).
    pub fn accumulator(&self) -> TrialAccumulator {
        if self.curve {
            TrialAccumulator::with_curve()
        } else {
            TrialAccumulator::new()
        }
    }

    /// Runs `trials` independent trials and returns their outcomes in trial
    /// order.
    ///
    /// Each worker (one in sequential mode) builds a single [`TrialExecutor`]
    /// and reuses it for all its trials, so the per-trial cost is the
    /// execution itself — no network copy, no scratch reallocation, no
    /// process-vector growth. Outcomes depend only on the trial index, never
    /// on which worker (or executor) ran a trial.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] if `trials` is zero.
    pub fn collect_trials(&self, trials: usize) -> Result<Vec<TrialOutcome>> {
        if trials == 0 {
            return Err(ScenarioError::NoTrials);
        }
        if let Some(executor) = self.batch_executor_if_usable() {
            return Ok(self.collect_trials_batched(executor, trials));
        }
        let outcomes: Vec<TrialOutcome> = if self.parallel {
            (0..trials)
                .into_par_iter()
                .map_init(
                    || self.executor(),
                    |executor, t| self.run_trial_on(executor, t),
                )
                .collect()
        } else {
            let mut executor = self.executor();
            (0..trials)
                .map(|t| self.run_trial_on(&mut executor, t))
                .collect()
        };
        Ok(outcomes)
    }

    /// Runs `trials` independent trials and summarizes them.
    ///
    /// With [`ScenarioRunner::curve`] the trials run sequentially through one
    /// executor and their collision curves stream into the measurement's
    /// [`ContentionCurve`]; otherwise the scalar fan-out path is used. Both
    /// produce identical scalar statistics.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] if `trials` is zero.
    pub fn run_trials(&self, trials: usize) -> Result<Measurement> {
        if self.curve {
            if trials == 0 {
                return Err(ScenarioError::NoTrials);
            }
            let mut acc = TrialAccumulator::with_curve();
            if let Some(mut executor) = self.batch_executor_if_usable() {
                // Curve streaming is inherently sequential, but each lane
                // group still advances up to MAX_LANES trials per word pass;
                // outcomes come back in lane (= trial) order, so the curve
                // folds exactly as the scalar loop would fold it.
                for (_start, seeds) in self.lane_groups(trials) {
                    let outcomes = executor
                        .execute_group(&seeds, self.effective_record_mode())
                        // lint: allow(D4) -- an identical construction was probed when the batch path was selected
                        .expect("group batchability was verified when the batch path was selected");
                    for outcome in outcomes {
                        acc.push(&outcome.into_trial_metrics());
                    }
                }
            } else {
                let mut executor = self.executor();
                for t in 0..trials {
                    self.run_trial_into(&mut executor, t, &mut acc);
                }
            }
            acc.finish()
        } else {
            Measurement::from_trials(&self.collect_trials(trials)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversarySpec;
    use crate::problem::ProblemSpec;
    use crate::topology::TopologySpec;
    use dradio_core::algorithms::GlobalAlgorithm;

    fn scenario(seed: u64) -> Scenario {
        Scenario::on(TopologySpec::DualClique { n: 16 })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(AdversarySpec::Iid { p: 0.5 })
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(20_000)
            .build()
            .expect("valid scenario")
    }

    fn outcome(trial: usize, cost: usize, completed: bool, collisions: usize) -> TrialOutcome {
        TrialOutcome {
            trial,
            seed: trial as u64 + 1,
            metrics: dradio_sim::TrialMetrics {
                rounds: cost,
                completed,
                collisions,
                collisions_per_round: None,
            },
        }
    }

    #[test]
    fn zero_trials_is_an_explicit_error() {
        let s = scenario(1);
        assert!(matches!(s.run_trials(0), Err(ScenarioError::NoTrials)));
        assert!(matches!(
            Measurement::from_trials(&[]),
            Err(ScenarioError::NoTrials)
        ));
        assert!(matches!(
            ScenarioRunner::new(&s).curve(true).run_trials(0),
            Err(ScenarioError::NoTrials)
        ));
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = scenario(5);
        let runner = ScenarioRunner::new(&s);
        let parallel = runner.run_trials(6).unwrap();
        let sequential = runner.sequential().run_trials(6).unwrap();
        assert_eq!(parallel, sequential);
        // Trial-level outcomes agree too, in order.
        assert_eq!(
            runner.collect_trials(6).unwrap(),
            runner.sequential().collect_trials(6).unwrap()
        );
    }

    #[test]
    fn reused_executor_trials_match_one_shot_trials() {
        let s = scenario(21);
        let runner = ScenarioRunner::new(&s);
        let mut executor = runner.executor();
        for t in 0..6 {
            assert_eq!(
                runner.run_trial_on(&mut executor, t),
                runner.run_trial(t),
                "trial {t} diverged between the reused executor and a fresh simulator"
            );
        }
        // Out-of-order and repeated trials reproduce too: outcomes depend on
        // the trial index only, never on executor history.
        for t in [3usize, 0, 5, 3] {
            assert_eq!(runner.run_trial_on(&mut executor, t), runner.run_trial(t));
        }
    }

    #[test]
    fn measurements_are_deterministic_per_seed() {
        let a = scenario(9).run_trials(4).unwrap();
        let b = scenario(9).run_trials(4).unwrap();
        assert_eq!(a, b);
        let c = scenario(10).run_trials(4).unwrap();
        assert_ne!(
            a.rounds, c.rounds,
            "different scenario seeds should diverge"
        );
    }

    #[test]
    fn trial_seeds_are_distinct_and_derived() {
        let s = scenario(2);
        let runner = ScenarioRunner::new(&s);
        let seeds: Vec<u64> = (0..16).map(|t| runner.trial_seed(t)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "trial seeds must not collide");
        assert!(
            !seeds.contains(&s.seed()),
            "trial seeds differ from the scenario seed"
        );
    }

    /// Pins the module-level trial-seed derivation contract: the exact
    /// constant and finalizer that campaign result stores depend on. If this
    /// test needs editing, every persisted store is invalidated — bump a
    /// store format version instead of silently changing the derivation.
    #[test]
    fn trial_seed_contract_is_pinned() {
        // An independent splitmix64-finalizer reimplementation.
        fn finalize(master: u64, stream: u64) -> u64 {
            let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let s = scenario(0xFEED);
        let runner = ScenarioRunner::new(&s);
        for t in 0..32 {
            assert_eq!(
                runner.trial_seed(t),
                finalize(0xFEED, TRIAL_STREAM_BASE ^ t as u64),
                "trial {t} seed diverged from the documented derivation"
            );
        }
        // And one literal value, so even a coordinated change to both sides
        // of the equation above cannot slip through unnoticed.
        assert_eq!(
            runner.trial_seed(0),
            finalize(0xFEED, 0x5CE7_AB10_0000_0000)
        );
    }

    #[test]
    fn record_modes_do_not_change_measurements() {
        let s = scenario(13);
        let runner = ScenarioRunner::new(&s);
        let fast = runner.run_trials(6).unwrap();
        let full = runner.record_mode(RecordMode::Full).run_trials(6).unwrap();
        let collisions_only = runner
            .record_mode(RecordMode::CollisionsOnly)
            .run_trials(6)
            .unwrap();
        assert_eq!(fast, full);
        assert_eq!(fast, collisions_only);
        assert_eq!(
            runner.collect_trials(6).unwrap(),
            runner
                .record_mode(RecordMode::Full)
                .collect_trials(6)
                .unwrap()
        );
    }

    #[test]
    fn curve_runs_promote_to_collisions_only_and_keep_scalars_identical() {
        let s = scenario(13);
        let runner = ScenarioRunner::new(&s);
        assert_eq!(runner.effective_record_mode(), RecordMode::None);
        let with_curve = runner.curve(true);
        assert!(with_curve.has_curve());
        assert_eq!(
            with_curve.effective_record_mode(),
            RecordMode::CollisionsOnly,
            "curves need per-round collision counts, not full history"
        );
        // An explicit full mode is left alone.
        assert_eq!(
            with_curve
                .record_mode(RecordMode::Full)
                .effective_record_mode(),
            RecordMode::Full
        );

        let plain = runner.run_trials(6).unwrap();
        let curved = with_curve.run_trials(6).unwrap();
        assert_eq!(plain.rounds, curved.rounds);
        assert_eq!(plain.completion, curved.completion);
        assert_eq!(plain.mean_collisions, curved.mean_collisions);
        assert!(plain.contention.is_none());
        let curve = curved.contention.expect("curve requested");
        assert_eq!(curve.trials(), 6);
        assert_eq!(
            curve.len(),
            plain.rounds.max as usize,
            "the curve spans the longest trial"
        );
        // The curve is consistent with the aggregate collision count: summing
        // mean collisions over rounds recovers mean collisions per trial.
        let total: f64 = curve.means().iter().sum();
        assert!(
            (total - plain.mean_collisions).abs() < 1e-9,
            "curve total {total} vs mean collisions {}",
            plain.mean_collisions
        );
    }

    #[test]
    fn streamed_curve_matches_per_trial_recomputation() {
        // Reference: collect each trial's curve directly from the engine and
        // fold in one batch; the runner's streaming path must agree exactly.
        let s = scenario(17);
        let runner = ScenarioRunner::new(&s).curve(true);
        let mut reference = ContentionCurve::new();
        for t in 0..5 {
            let outcome = s.run_with(runner.trial_seed(t), RecordMode::CollisionsOnly);
            reference.push_trial(&outcome.collisions_per_round);
        }
        let measured = runner.run_trials(5).unwrap().contention.unwrap();
        assert_eq!(measured, reference);
    }

    #[test]
    fn run_trial_into_streams_and_returns_scalar_outcomes() {
        let s = scenario(23);
        let runner = ScenarioRunner::new(&s).curve(true);
        let mut acc = runner.accumulator();
        let mut executor = runner.executor();
        let mut outcomes = Vec::new();
        for t in 0..4 {
            let outcome = runner.run_trial_into(&mut executor, t, &mut acc);
            assert_eq!(
                outcome.metrics.collisions_per_round, None,
                "returned outcomes carry scalars only"
            );
            outcomes.push(outcome);
        }
        assert_eq!(outcomes, runner.collect_trials(4).unwrap());
        assert_eq!(acc.len(), 4);
        let finished = acc.finish().unwrap();
        assert_eq!(finished, runner.run_trials(4).unwrap());
    }

    #[test]
    fn accumulator_moments_and_completion_track_the_batch() {
        let trials = vec![
            outcome(0, 10, true, 4),
            outcome(1, 20, false, 6),
            outcome(2, 30, true, 2),
        ];
        let mut acc = TrialAccumulator::new();
        assert!(acc.is_empty());
        for t in &trials {
            acc.push(&t.metrics);
        }
        assert_eq!(acc.len(), 3);
        assert_eq!(
            acc.completion(),
            Completion {
                completed: 2,
                trials: 3
            }
        );
        assert!((acc.cost_moments().mean() - 20.0).abs() < 1e-12);
        let m = acc.finish().unwrap();
        assert_eq!(m, Measurement::from_trials(&trials).unwrap());
        assert!(matches!(
            TrialAccumulator::new().finish(),
            Err(ScenarioError::NoTrials)
        ));
    }

    #[test]
    fn measurement_serde_round_trips() {
        let m = scenario(3).run_trials(4).unwrap();
        let back = Measurement::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
        // With a curve, too.
        let curved = ScenarioRunner::new(&scenario(3))
            .curve(true)
            .run_trials(4)
            .unwrap();
        let back = Measurement::from_value(&curved.to_value()).unwrap();
        assert_eq!(curved, back);
    }

    #[test]
    fn measurement_serde_without_curve_keeps_the_legacy_shape() {
        // Measurements without a curve serialize with exactly the pre-curve
        // keys — byte compatibility for existing stores rides on this.
        let m = scenario(3).run_trials(4).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"rounds\""));
        assert!(json.contains("\"completion_rate\""));
        assert!(json.contains("\"mean_collisions\""));
        assert!(!json.contains("contention"), "{json}");
        // A legacy value (no contention key) deserializes with exact counts.
        let legacy: Measurement = serde_json::from_str(&json).unwrap();
        assert_eq!(legacy.completion.trials, 4);
        assert_eq!(legacy, m);
    }

    #[test]
    fn batch_fan_out_matches_scalar_everywhere() {
        let s = scenario(31);
        let runner = ScenarioRunner::new(&s);
        let batched = runner.batch(true);
        assert!(batched.has_batch());
        assert!(batched.uses_batch(), "iid adversary + RecordMode::None");
        // Trial-by-trial outcomes: ragged tail group (100 = 64 + 36), a
        // group smaller than one lane word, and both execution strategies.
        for trials in [100usize, 7, 64] {
            assert_eq!(
                batched.collect_trials(trials).unwrap(),
                runner.collect_trials(trials).unwrap(),
                "{trials} trials"
            );
            assert_eq!(
                batched.sequential().collect_trials(trials).unwrap(),
                runner.collect_trials(trials).unwrap(),
                "{trials} trials, sequential lane groups"
            );
        }
        // Measurements, with and without curve streaming.
        assert_eq!(
            batched.run_trials(70).unwrap(),
            runner.run_trials(70).unwrap()
        );
        assert_eq!(
            batched.curve(true).run_trials(70).unwrap(),
            runner.curve(true).run_trials(70).unwrap(),
            "batched lane groups stream the identical contention curve"
        );
    }

    #[test]
    fn unbatchable_runners_fall_back_to_scalar() {
        let s = scenario(5);
        let runner = ScenarioRunner::new(&s).batch(true);
        // Full recording cannot batch; the fallback still answers.
        let full = runner.record_mode(RecordMode::Full);
        assert!(!full.uses_batch());
        assert_eq!(
            full.collect_trials(5).unwrap(),
            ScenarioRunner::new(&s).collect_trials(5).unwrap()
        );
        // An adaptive adversary cannot batch either.
        let adaptive = Scenario::on(TopologySpec::DualClique { n: 8 })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(AdversarySpec::GreedyCollision)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(3)
            .max_rounds(5_000)
            .build()
            .expect("valid scenario");
        let adaptive_runner = ScenarioRunner::new(&adaptive).batch(true);
        assert!(!adaptive_runner.uses_batch());
        assert_eq!(
            adaptive_runner.run_trials(4).unwrap(),
            ScenarioRunner::new(&adaptive).run_trials(4).unwrap()
        );
    }

    #[test]
    fn measurement_aggregates_counts() {
        let trials = vec![outcome(0, 10, true, 4), outcome(1, 20, false, 6)];
        let m = Measurement::from_trials(&trials).unwrap();
        assert_eq!(m.rounds.count, 2);
        assert_eq!(m.rounds.mean, 15.0);
        assert_eq!(m.completion_rate(), 0.5);
        assert_eq!(
            m.completion,
            Completion {
                completed: 1,
                trials: 2
            }
        );
        assert_eq!(m.mean_collisions, 5.0);
        assert!(m.contention.is_none());
        assert_eq!(trials[0].cost(), 10);
        assert!(trials[0].completed());
        assert_eq!(trials[1].collisions(), 6);
    }
}
