//! The scenario value, its builder, and single-execution entry points.

use std::fmt;
use std::sync::Arc;

use dradio_graphs::DualGraph;
use dradio_sim::{
    AdversaryClass, Assignment, BatchExecutor, ExecutionOutcome, History, LinkProcess,
    ProcessFactory, RecordMode, SimConfig, Simulator, StopCondition, TrialExecutor,
};
use serde::{Deserialize, Serialize, Value};

use crate::adversary::AdversarySpec;
use crate::error::{Result, ScenarioError};
use crate::problem::{AlgorithmSpec, ProblemSpec, ResolvedProblem};
use crate::runner::{Measurement, ScenarioRunner};
use crate::topology::{BackendChoice, BuiltTopology, TopologySpec};

/// Builds one fresh link process per trial. Adversaries are stateful, so the
/// scenario stores this recipe rather than an instance. This is the engine's
/// [`LinkFactory`](dradio_sim::LinkFactory) type: a scenario hands its recipe
/// straight to the [`TrialExecutor`]s it creates, which only invoke it when a
/// spent link process cannot [`reset`](LinkProcess::reset) itself.
pub type LinkBuilder = dradio_sim::LinkFactory;

/// The pure-value description of a scenario: what to simulate, against whom,
/// and from which seed.
///
/// A spec is `Clone + Debug + PartialEq + serde`, so scenarios can be
/// printed, stored, diffed and swept. Specs built entirely from declarative
/// variants round-trip through serialization and rebuild identically;
/// `Custom` variants record their name but need their runtime value
/// re-attached through [`ScenarioBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The network.
    pub topology: TopologySpec,
    /// The broadcast algorithm.
    pub algorithm: AlgorithmSpec,
    /// The link process recipe.
    pub adversary: AdversarySpec,
    /// The problem being solved.
    pub problem: ProblemSpec,
    /// Master seed; trial `t` of a runner derives its own seed from it.
    pub seed: u64,
    /// Per-execution round budget; `None` picks `200·n + 2000`.
    pub max_rounds: Option<usize>,
    /// Diagnostic collision-detection mode (off in the paper's model).
    pub collision_detection: bool,
}

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("topology".into(), self.topology.to_value()),
            ("algorithm".into(), self.algorithm.to_value()),
            ("adversary".into(), self.adversary.to_value()),
            ("problem".into(), self.problem.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("max_rounds".into(), self.max_rounds.to_value()),
            (
                "collision_detection".into(),
                self.collision_detection.to_value(),
            ),
        ])
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("ScenarioSpec is missing {name:?}")))
        };
        // The execution knobs default when absent so that hand-written spec
        // files can stay minimal.
        Ok(ScenarioSpec {
            topology: TopologySpec::from_value(field("topology")?)?,
            algorithm: AlgorithmSpec::from_value(field("algorithm")?)?,
            adversary: AdversarySpec::from_value(field("adversary")?)?,
            problem: ProblemSpec::from_value(field("problem")?)?,
            seed: match value.get("seed") {
                Some(v) => u64::from_value(v)?,
                None => 0,
            },
            max_rounds: match value.get("max_rounds") {
                Some(v) => Option::<usize>::from_value(v)?,
                None => None,
            },
            collision_detection: match value.get("collision_detection") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
        })
    }
}

impl ScenarioSpec {
    /// Resolves the spec into a runnable [`Scenario`].
    ///
    /// # Errors
    ///
    /// See [`ScenarioBuilder::build`].
    pub fn build(self) -> Result<Scenario> {
        ScenarioBuilder::from_spec(self).build()
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} × {} × {} (seed {})",
            self.topology.label(),
            self.algorithm.name(),
            self.adversary.label(),
            self.problem.label(),
            self.seed
        )
    }
}

/// Fluent construction of a [`Scenario`].
///
/// ```
/// use dradio_core::algorithms::GlobalAlgorithm;
/// use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};
///
/// let scenario = Scenario::on(TopologySpec::DualClique { n: 64 })
///     .algorithm(GlobalAlgorithm::Permuted)
///     .adversary(AdversarySpec::Iid { p: 0.5 })
///     .problem(ProblemSpec::GlobalFrom(0))
///     .seed(1)
///     .build()?;
/// let outcome = scenario.run();
/// assert!(outcome.completed);
/// assert!(scenario.verify(&outcome.history));
/// # Ok::<(), dradio_scenario::ScenarioError>(())
/// ```
pub struct ScenarioBuilder {
    topology: TopologySpec,
    attached_topology: Option<BuiltTopology>,
    algorithm: Option<AlgorithmSpec>,
    attached_factory: Option<ProcessFactory>,
    adversary: AdversarySpec,
    attached_link: Option<LinkBuilder>,
    problem: Option<ProblemSpec>,
    seed: u64,
    max_rounds: Option<usize>,
    collision_detection: bool,
    record_mode: RecordMode,
    backend: BackendChoice,
}

impl ScenarioBuilder {
    fn new(topology: TopologySpec, attached: Option<BuiltTopology>) -> Self {
        ScenarioBuilder {
            topology,
            attached_topology: attached,
            algorithm: None,
            attached_factory: None,
            adversary: AdversarySpec::StaticNone,
            attached_link: None,
            problem: None,
            seed: 0,
            max_rounds: None,
            collision_detection: false,
            record_mode: RecordMode::Full,
            backend: BackendChoice::Auto,
        }
    }

    /// Recreates a builder from a stored spec. Specs with `Custom` components
    /// need those components re-attached before [`ScenarioBuilder::build`]
    /// succeeds.
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        let mut b = ScenarioBuilder::new(spec.topology, None);
        b.algorithm = Some(spec.algorithm);
        b.adversary = spec.adversary;
        b.problem = Some(spec.problem);
        b.seed = spec.seed;
        b.max_rounds = spec.max_rounds;
        b.collision_detection = spec.collision_detection;
        b
    }

    /// Sets the algorithm (accepts `GlobalAlgorithm`, `LocalAlgorithm`, or
    /// an [`AlgorithmSpec`]).
    pub fn algorithm(mut self, algorithm: impl Into<AlgorithmSpec>) -> Self {
        self.algorithm = Some(algorithm.into());
        self
    }

    /// Attaches a hand-written process factory under the given name. The
    /// scenario runs it, but a serialized spec records only the name.
    pub fn custom_algorithm(mut self, name: impl Into<String>, factory: ProcessFactory) -> Self {
        self.algorithm = Some(AlgorithmSpec::Custom { name: name.into() });
        self.attached_factory = Some(factory);
        self
    }

    /// Sets the adversary recipe (defaults to [`AdversarySpec::StaticNone`]).
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Attaches a hand-written link-process recipe under the given name. The
    /// recipe is invoked once per trial (adversaries are stateful).
    pub fn custom_adversary(
        mut self,
        name: impl Into<String>,
        build: impl Fn() -> Box<dyn LinkProcess> + Send + Sync + 'static,
    ) -> Self {
        self.adversary = AdversarySpec::Custom { name: name.into() };
        self.attached_link = Some(Arc::new(build));
        self
    }

    /// Sets the problem.
    pub fn problem(mut self, problem: ProblemSpec) -> Self {
        self.problem = Some(problem);
        self
    }

    /// Sets the master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-execution round budget (default `200·n + 2000`).
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Enables the diagnostic collision-detection mode.
    pub fn collision_detection(mut self, enabled: bool) -> Self {
        self.collision_detection = enabled;
        self
    }

    /// Sets how much of each execution is retained (default
    /// [`RecordMode::Full`], so [`Scenario::run`] keeps the history that
    /// [`Scenario::verify`] inspects). Trial fan-out through
    /// [`ScenarioRunner`] defaults to [`RecordMode::None`] instead — see its
    /// documentation. Executions against adaptive adversary classes always
    /// auto-promote to `Full`.
    pub fn record_mode(mut self, record_mode: RecordMode) -> Self {
        self.record_mode = record_mode;
        self
    }

    /// Sets how the network's adjacency storage backend is chosen (default
    /// [`BackendChoice::Auto`]: the generator's density heuristic). Purely a
    /// memory/layout knob — executions are identical under every choice —
    /// so, like the record mode, it is not part of the serialized spec.
    /// Applies to attached topologies too (they are converted at build).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the topology with a directly supplied network (also
    /// reachable via [`Scenario::on_dual`]).
    pub fn custom_dual(mut self, dual: DualGraph) -> Self {
        self.topology = TopologySpec::Custom {
            name: dual.name().to_string(),
        };
        self.attached_topology = Some(BuiltTopology::plain(dual));
        self
    }

    /// Attaches an already-built topology for this builder's declarative
    /// spec, so expensive generators (e.g. large random geometric
    /// deployments) can be built once and shared across scenarios that
    /// differ only in algorithm or adversary.
    ///
    /// The caller guarantees `built` is what the spec's
    /// [`build`](TopologySpec::build) would produce — the spec itself is
    /// recorded unchanged, so a serialized spec still rebuilds the same
    /// network.
    pub fn with_topology(mut self, built: BuiltTopology) -> Self {
        self.attached_topology = Some(built);
        self
    }

    /// Resolves every component and validates their combination.
    ///
    /// # Errors
    ///
    /// * [`ScenarioError::Missing`] if no algorithm or problem was set.
    /// * [`ScenarioError::Incompatible`] for kind mismatches (global
    ///   algorithm × local problem and vice versa) or specs whose topology
    ///   requirements are unmet.
    /// * [`ScenarioError::CustomUnavailable`] if a `Custom` spec component
    ///   has no attached value.
    /// * [`ScenarioError::Topology`] if the topology generator rejects its
    ///   parameters.
    pub fn build(self) -> Result<Scenario> {
        let topology = match self.attached_topology {
            Some(t) => t.with_backend(self.backend),
            None => self.topology.build_with_backend(self.backend)?,
        };
        let algorithm = self
            .algorithm
            .ok_or(ScenarioError::Missing { what: "algorithm" })?;
        let problem = self
            .problem
            .ok_or(ScenarioError::Missing { what: "problem" })?;

        if let Some(algo_global) = algorithm.is_global() {
            if algo_global != problem.is_global() {
                return Err(ScenarioError::Incompatible {
                    reason: format!(
                        "algorithm {} solves {} broadcast but the problem {} is {}",
                        algorithm.name(),
                        if algo_global { "global" } else { "local" },
                        problem.label(),
                        if problem.is_global() {
                            "global"
                        } else {
                            "local"
                        },
                    ),
                });
            }
        }

        let resolved = problem.resolve(&topology)?;
        let assignment = resolved.assignment(&topology);
        let stop = resolved.stop_condition(&topology);

        let factory = match (&algorithm, self.attached_factory) {
            (AlgorithmSpec::Custom { .. }, Some(factory)) => factory,
            (AlgorithmSpec::Custom { .. }, None) => {
                return Err(ScenarioError::CustomUnavailable { what: "algorithm" });
            }
            (spec, _) => spec.factory(topology.len(), topology.max_degree())?,
        };

        let link: LinkBuilder = match (&self.adversary, self.attached_link) {
            (AdversarySpec::Custom { .. }, Some(link)) => link,
            (AdversarySpec::Custom { .. }, None) => {
                return Err(ScenarioError::CustomUnavailable { what: "adversary" });
            }
            (spec, _) => {
                // Validate the recipe once up front so per-trial construction
                // cannot fail later (inside worker threads).
                spec.build(&topology)?;
                let spec = spec.clone();
                let topo = topology.clone();
                Arc::new(move || {
                    spec.build(&topo)
                        // lint: allow(D4) -- adversary spec was validated at scenario build time
                        .expect("adversary spec was validated at scenario build time")
                })
            }
        };

        let max_rounds = self.max_rounds.unwrap_or(200 * topology.len() + 2_000);
        // Reject configurations the simulator would refuse (e.g. a zero
        // round budget) here, so run()'s "validated at build time" expect
        // cannot fire later inside worker threads.
        SimConfig::default()
            .with_max_rounds(max_rounds)
            .validate()?;

        Ok(Scenario {
            spec: ScenarioSpec {
                topology: self.topology,
                algorithm,
                adversary: self.adversary,
                problem,
                seed: self.seed,
                max_rounds: Some(max_rounds),
                collision_detection: self.collision_detection,
            },
            topology,
            factory,
            assignment,
            stop,
            link,
            resolved,
            max_rounds,
            collision_detection: self.collision_detection,
            record_mode: self.record_mode,
        })
    }
}

/// A fully resolved scenario: one (topology × algorithm × adversary ×
/// problem) combination, ready to execute any number of independent trials.
///
/// Built through [`Scenario::on`] / [`ScenarioBuilder`]; see the
/// [crate documentation](crate) for the full model.
#[derive(Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
    topology: BuiltTopology,
    factory: ProcessFactory,
    assignment: Assignment,
    stop: StopCondition,
    link: LinkBuilder,
    resolved: ResolvedProblem,
    max_rounds: usize,
    collision_detection: bool,
    record_mode: RecordMode,
}

impl Scenario {
    /// Starts a builder on the given topology.
    pub fn on(topology: TopologySpec) -> ScenarioBuilder {
        ScenarioBuilder::new(topology, None)
    }

    /// Starts a builder on a directly supplied network (for topologies no
    /// generator covers, e.g. hand-built attack graphs).
    pub fn on_dual(dual: DualGraph) -> ScenarioBuilder {
        let spec = TopologySpec::Custom {
            name: dual.name().to_string(),
        };
        ScenarioBuilder::new(spec, Some(BuiltTopology::plain(dual)))
    }

    /// The pure-value description of this scenario.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The resolved topology (network plus construction metadata).
    pub fn topology(&self) -> &BuiltTopology {
        &self.topology
    }

    /// The network being simulated.
    pub fn dual(&self) -> &DualGraph {
        &self.topology.dual
    }

    /// The role assignment derived from the problem.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The completion condition derived from the problem.
    pub fn stop_condition(&self) -> &StopCondition {
        &self.stop
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.spec.seed
    }

    /// The per-execution round budget.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The record mode single executions run with (the requested mode; the
    /// engine promotes to [`RecordMode::Full`] for adaptive adversaries).
    pub fn record_mode(&self) -> RecordMode {
        self.record_mode
    }

    /// Runs one execution with the scenario's own seed.
    pub fn run(&self) -> ExecutionOutcome {
        self.run_with_seed(self.spec.seed)
    }

    /// Runs one execution with an explicit master seed (the runner uses this
    /// with derived per-trial seeds).
    pub fn run_with_seed(&self, seed: u64) -> ExecutionOutcome {
        self.run_with(seed, self.record_mode)
    }

    /// Runs one execution with an explicit master seed and record mode
    /// (overriding the scenario's own mode; [`ScenarioRunner`] uses this for
    /// its history-free trial fan-out).
    pub fn run_with(&self, seed: u64, record_mode: RecordMode) -> ExecutionOutcome {
        let config = SimConfig::default()
            .with_seed(seed)
            .with_max_rounds(self.max_rounds)
            .with_collision_detection(self.collision_detection)
            .with_record_mode(record_mode);
        Simulator::new(
            Arc::clone(&self.topology.dual),
            self.factory.clone(),
            self.assignment.clone(),
            (self.link)(),
            config,
        )
        // lint: allow(D4) -- components were validated when the scenario was built
        .expect("scenario components were validated at build time")
        .run(self.stop.clone())
    }

    /// A reusable [`TrialExecutor`] over this scenario: the network is shared
    /// (never copied), and the per-trial mutable state — processes, random
    /// streams, stop tracking, round scratch — is reused in place across
    /// [`execute`](TrialExecutor::execute) calls. Each worker of a trial
    /// fan-out holds one.
    ///
    /// `executor.execute(seed, mode)` produces exactly the outcome of
    /// [`Scenario::run_with(seed, mode)`](Scenario::run_with); the root
    /// `integration_executor` suite pins this for every registered component
    /// class.
    pub fn executor(&self) -> TrialExecutor {
        let config = SimConfig::default()
            .with_seed(self.spec.seed)
            .with_max_rounds(self.max_rounds)
            .with_collision_detection(self.collision_detection)
            .with_record_mode(self.record_mode);
        TrialExecutor::new(
            Arc::clone(&self.topology.dual),
            self.factory.clone(),
            self.assignment.clone(),
            self.link.clone(),
            self.stop.clone(),
            config,
        )
        // lint: allow(D4) -- components were validated when the scenario was built
        .expect("scenario components were validated at build time")
    }

    /// A reusable [`BatchExecutor`] over this scenario: the bit-sliced
    /// counterpart of [`executor`](Scenario::executor), running up to
    /// [`MAX_LANES`](dradio_sim::MAX_LANES) trials per word pass. Lane `k` of
    /// a group seeded `[trial_seed(t0), trial_seed(t0+1), ..]` produces
    /// exactly the outcome `executor().execute(trial_seed(t0+k), mode)`
    /// would.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedBatch`](dradio_sim::SimError::UnsupportedBatch)
    /// when the scenario's adversary is not oblivious; callers fall back to
    /// the scalar executor (see [`Scenario::is_batchable`]).
    pub fn batch_executor(&self) -> dradio_sim::Result<BatchExecutor> {
        let config = SimConfig::default()
            .with_seed(self.spec.seed)
            .with_max_rounds(self.max_rounds)
            .with_collision_detection(self.collision_detection)
            .with_record_mode(self.record_mode);
        BatchExecutor::new(
            Arc::clone(&self.topology.dual),
            self.factory.clone(),
            self.assignment.clone(),
            self.link.clone(),
            self.stop.clone(),
            config,
        )
    }

    /// Whether trial fan-outs over this scenario may use the bit-sliced
    /// [`BatchExecutor`] when asked to: the adversary must be declared
    /// oblivious and `record_mode` must not record history. Custom adversary
    /// specs (unknown class) and adaptive classes report `false`.
    ///
    /// This is a spec-level pre-check; [`Scenario::batch_executor`] re-checks
    /// the actual link process it constructs.
    pub fn is_batchable(&self, record_mode: RecordMode) -> bool {
        self.spec.adversary.class() == Some(AdversaryClass::Oblivious)
            && !record_mode.records_history()
    }

    /// Checks a recorded history against the problem's correctness
    /// criterion (independent of the stop condition).
    pub fn verify(&self, history: &History) -> bool {
        self.resolved.verify(&self.topology, history)
    }

    /// A runner over this scenario (parallel by default).
    pub fn runner(&self) -> ScenarioRunner<'_> {
        ScenarioRunner::new(self)
    }

    /// Convenience: runs `trials` independent trials in parallel and
    /// summarizes them. See [`ScenarioRunner::run_trials`].
    ///
    /// # Errors
    ///
    /// [`ScenarioError::NoTrials`] if `trials` is zero.
    pub fn run_trials(&self, trials: usize) -> Result<Measurement> {
        self.runner().run_trials(trials)
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("spec", &self.spec)
            .field("n", &self.topology.len())
            .field("max_rounds", &self.max_rounds)
            .finish()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.spec.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
    use dradio_core::kinds;
    use dradio_graphs::topology;
    use dradio_sim::StaticLinks;
    use dradio_sim::{Action, Message, Process, ProcessContext, Role, Round};
    use rand::RngCore;

    fn permuted_iid(n: usize, seed: u64) -> Scenario {
        Scenario::on(TopologySpec::DualClique { n })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(AdversarySpec::Iid { p: 0.5 })
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(20_000)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn builder_produces_a_runnable_scenario() {
        let scenario = permuted_iid(16, 7);
        let outcome = scenario.run();
        assert!(outcome.completed);
        assert!(scenario.verify(&outcome.history));
        assert_eq!(scenario.seed(), 7);
        assert_eq!(scenario.max_rounds(), 20_000);
        assert!(scenario.to_string().contains("dual-clique(16)"));
    }

    #[test]
    fn executions_are_deterministic_per_seed() {
        let scenario = permuted_iid(16, 3);
        let a = scenario.run();
        let b = scenario.run();
        assert_eq!(a.history, b.history);
        assert_eq!(a.metrics, b.metrics);
        let c = scenario.run_with_seed(4);
        assert_ne!(a.history, c.history, "different seeds should diverge");
    }

    #[test]
    fn missing_components_are_reported() {
        let err = Scenario::on(TopologySpec::Clique { n: 8 })
            .problem(ProblemSpec::GlobalFrom(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Missing { what: "algorithm" }));

        let err = Scenario::on(TopologySpec::Clique { n: 8 })
            .algorithm(GlobalAlgorithm::Bgi)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Missing { what: "problem" }));
    }

    #[test]
    fn kind_mismatches_are_rejected() {
        let err = Scenario::on(TopologySpec::Clique { n: 8 })
            .algorithm(GlobalAlgorithm::Bgi)
            .problem(ProblemSpec::Local {
                broadcasters: vec![1],
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Incompatible { .. }));

        let err = Scenario::on(TopologySpec::Clique { n: 8 })
            .algorithm(LocalAlgorithm::Uniform)
            .problem(ProblemSpec::GlobalFrom(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Incompatible { .. }));
    }

    #[test]
    fn spec_round_trips_and_rebuilds_identically() {
        let scenario = permuted_iid(16, 9);
        let json = serde_json::to_string(scenario.spec()).unwrap();
        let spec: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(&spec, scenario.spec());
        let rebuilt = spec.build().unwrap();
        let a = scenario.run();
        let b = rebuilt.run();
        assert_eq!(a.history, b.history);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn deserialized_custom_specs_need_reattachment() {
        let spec = ScenarioSpec {
            topology: TopologySpec::Custom {
                name: "gone".into(),
            },
            algorithm: AlgorithmSpec::Global(GlobalAlgorithm::Bgi),
            adversary: AdversarySpec::StaticNone,
            problem: ProblemSpec::GlobalFrom(0),
            seed: 0,
            max_rounds: None,
            collision_detection: false,
        };
        assert!(matches!(
            spec.build().unwrap_err(),
            ScenarioError::CustomUnavailable { what: "topology" }
        ));
    }

    /// The source transmits every round; used to test the custom escape
    /// hatches.
    struct Shout {
        msg: Option<Message>,
    }
    impl Process for Shout {
        fn on_round(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Action {
            match &self.msg {
                Some(m) => Action::Transmit(m.clone()),
                None => Action::Listen,
            }
        }
    }

    #[test]
    fn custom_topology_algorithm_and_adversary_compose() {
        let dual = topology::star(5).unwrap();
        let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Source).then(|| Message::plain(ctx.id, kinds::DATA, 1));
            Box::new(Shout { msg }) as Box<dyn Process>
        });
        let scenario = Scenario::on_dual(dual)
            .custom_algorithm("shout", factory)
            .custom_adversary("quiet", || Box::new(StaticLinks::none()))
            .problem(ProblemSpec::GlobalFrom(0))
            .max_rounds(5)
            .build()
            .expect("custom scenario builds");
        let outcome = scenario.run();
        assert!(
            outcome.completed,
            "hub shout reaches all leaves in one round"
        );
        assert!(scenario.verify(&outcome.history));
        // The spec still describes the custom parts by name.
        let json = serde_json::to_string(scenario.spec()).unwrap();
        assert!(json.contains("shout"));
        assert!(json.contains("quiet"));
    }

    #[test]
    fn default_round_budget_scales_with_n() {
        let scenario = Scenario::on(TopologySpec::Clique { n: 10 })
            .algorithm(GlobalAlgorithm::Bgi)
            .problem(ProblemSpec::GlobalFrom(0))
            .build()
            .unwrap();
        assert_eq!(scenario.max_rounds(), 200 * 10 + 2_000);
    }

    #[test]
    fn zero_round_budget_is_rejected_at_build_time() {
        let err = Scenario::on(TopologySpec::Clique { n: 8 })
            .algorithm(GlobalAlgorithm::Bgi)
            .problem(ProblemSpec::GlobalFrom(0))
            .max_rounds(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::Sim(_)));
    }

    #[test]
    fn scenario_record_mode_defaults_to_full_and_is_settable() {
        let scenario = permuted_iid(16, 7);
        assert_eq!(scenario.record_mode(), RecordMode::Full);
        let outcome = scenario.run();
        assert!(
            !outcome.history.is_empty(),
            "run() keeps history for verify"
        );

        let fast = Scenario::on(TopologySpec::DualClique { n: 16 })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(AdversarySpec::Iid { p: 0.5 })
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(7)
            .max_rounds(20_000)
            .record_mode(RecordMode::None)
            .build()
            .unwrap();
        let light = fast.run();
        assert!(light.history.is_empty());
        // Identical behaviour: same cost and metrics as the recorded run.
        assert_eq!(light.metrics, outcome.metrics);
        assert_eq!(light.completion_round, outcome.completion_round);
    }

    #[test]
    fn prebuilt_topologies_are_reused_without_changing_the_spec() {
        let spec = TopologySpec::RandomGeometric {
            n: 30,
            side: 2.0,
            r: 1.5,
            seed: 5,
        };
        let built = spec.build().unwrap();
        let scenario = Scenario::on(spec.clone())
            .with_topology(built.clone())
            .algorithm(LocalAlgorithm::StaticDecay)
            .problem(ProblemSpec::LocalRandom { count: 4, seed: 1 })
            .build()
            .unwrap();
        assert_eq!(scenario.dual(), built.dual.as_ref());
        assert_eq!(scenario.spec().topology, spec);
    }
}
