//! Summary statistics over repeated trials.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Summary statistics of a set of measurements (round counts, usually).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (average of the two middle samples for even counts).
    pub median: f64,
    /// 95th percentile (nearest-rank on the sorted samples).
    pub p95: f64,
}

impl Summary {
    /// Computes the summary of `samples`; an empty slice yields all zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        Summary::from_owned(samples.to_vec())
    }

    /// Computes the summary of integer samples.
    pub fn from_counts(samples: &[usize]) -> Self {
        Summary::from_iter(samples.iter().map(|&x| x as f64))
    }

    /// The single-buffer implementation behind every constructor.
    fn from_owned(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let sorted = samples;
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        // Nearest-rank p95: the smallest sample with at least 95% of the
        // distribution at or below it. Exact for the small trial counts the
        // runner produces (no interpolation to keep stored values reproducible
        // across platforms).
        let rank = ((0.95 * count as f64).ceil() as usize).clamp(1, count);
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
            p95: sorted[rank - 1],
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// The ~95% normal-approximation confidence interval for the mean, as
    /// `(lower, upper)` bounds. Collapses to `(mean, mean)` for fewer than
    /// two samples.
    pub fn mean_ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }

    /// Half-width of the 95% CI relative to the mean — the quantity adaptive
    /// trial allocation compares against a requested precision. Zero when the
    /// mean is zero (a degenerate series needs no more trials).
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95_half_width() / self.mean.abs()
        }
    }
}

/// Computes the summary from any stream of samples, buffering them exactly
/// once (the one buffer the order statistics need to sort). Numerically
/// identical to [`Summary::from_samples`] over the collected sequence: the
/// mean and variance are accumulated in iteration order, before the buffer
/// is sorted.
impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        Summary::from_owned(samples.into_iter().collect())
    }
}

/// Streaming (Welford) accumulator of the moments the adaptive trial
/// allocator's stopping rule needs: count, mean, and sample variance.
///
/// Pushing a sample is O(1), so evaluating the rule after each doubling
/// costs only the new trials — unlike recomputing a [`Summary`] from the
/// full cost vector, which is what this type replaces in the campaign
/// layer. The derived quantities ([`Moments::std_dev`],
/// [`Moments::relative_ci95`]) use the same formulas as `Summary`, and the
/// campaign tests pin that the incremental rule makes the same stopping
/// decisions as a full recompute.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    count: usize,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    /// Folds one sample into the moments.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (`n - 1` denominator; 0 for fewer than two
    /// samples).
    pub fn std_dev(&self) -> f64 {
        if self.count > 1 {
            (self.m2 / (self.count - 1) as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for the
    /// mean (matches [`Summary::ci95_half_width`]).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% CI relative to the mean (matches
    /// [`Summary::relative_ci95`]): the quantity adaptive trial allocation
    /// compares against its requested precision. Zero when the mean is zero.
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95_half_width() / self.mean.abs()
        }
    }
}

impl Moments {
    /// An accumulator equal to pushing `count` zero samples (exact in
    /// floating point: the mean and `M2` of an all-zero series are zero).
    /// The contention-curve accumulator uses this to backfill rounds a
    /// newly-seen longer trial introduces.
    pub fn zeros(count: usize) -> Self {
        Moments {
            count,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// The raw sum of squared deviations (Welford's `M2`) — exposed so the
    /// accumulator can be serialized and rebuilt exactly.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds an accumulator from its serialized parts. Inverse of
    /// (`count()`, `mean()`, `m2()`); meant for deserialization, not for
    /// hand-constructing statistics.
    pub fn from_parts(count: usize, mean: f64, m2: f64) -> Self {
        Moments { count, mean, m2 }
    }
}

/// The z value of a two-sided ~95% normal interval, shared by the mean-cost
/// CI ([`Summary::ci95_half_width`]) and the Wilson score interval
/// ([`Completion::wilson_ci95`]).
const Z95: f64 = 1.96;

/// Completion statistics of a trial batch: how many of the trials met their
/// stop condition within the round budget.
///
/// Stored as the exact integer counts, so the rate and its Wilson score
/// interval are reproducible; serialized inside
/// [`Measurement`](crate::Measurement) as the `completion_rate` field the
/// pre-curve store format used (byte-compatible), with the counts rebuilt
/// from the rate and the trial count on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Completion {
    /// Trials that completed within the budget.
    pub completed: usize,
    /// Total trials.
    pub trials: usize,
}

impl Completion {
    /// The completion fraction (`0` for an empty batch).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.completed as f64 / self.trials as f64
        }
    }

    /// The ~95% Wilson score interval for the completion probability, as
    /// `(lower, upper)`.
    ///
    /// Unlike the normal approximation it stays inside `[0, 1]` and remains
    /// informative at the boundary rates the lower-bound experiments
    /// produce (all trials censored, or all completed). Collapses to
    /// `(rate, rate)` for an empty batch.
    pub fn wilson_ci95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 0.0);
        }
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = Z95 * Z95;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let spread = Z95 * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        (center - spread, center + spread)
    }

    /// Half the width of the ~95% Wilson interval — the quantity a
    /// completion-targeted adaptive stop rule compares against its requested
    /// precision. Zero for an empty batch.
    pub fn wilson_half_width(&self) -> f64 {
        let (lo, hi) = self.wilson_ci95();
        (hi - lo) / 2.0
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.wilson_ci95();
        write!(
            f,
            "{:.0}% [{:.0}%, {:.0}%]",
            self.rate() * 100.0,
            lo * 100.0,
            hi * 100.0
        )
    }
}

/// Mean contention over time: per-round [`Moments`] of the collision count,
/// streamed one trial at a time — the aggregate never retains any per-trial
/// curve.
///
/// Round `r` aggregates, over **all** trials of the batch, the number of
/// collisions the engine observed in round `r`; a trial that finished (or
/// was censored) before round `r` contributes zero, so every round's
/// accumulator holds exactly `trials()` samples and the curve's tail decays
/// as trials complete. Folding is deterministic in trial-index order, which
/// is the order every aggregation path uses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContentionCurve {
    trials: usize,
    per_round: Vec<Moments>,
}

impl ContentionCurve {
    /// An empty curve (no trials folded yet).
    pub fn new() -> Self {
        ContentionCurve::default()
    }

    /// Folds one trial's per-round collision counts into the curve.
    ///
    /// O(max(len, curve len)): rounds beyond the trial's end take a zero
    /// sample, and rounds this trial introduces are backfilled with the
    /// zeros every earlier (shorter) trial implicitly contributed.
    pub fn push_trial(&mut self, collisions_per_round: &[usize]) {
        if collisions_per_round.len() > self.per_round.len() {
            self.per_round
                .resize(collisions_per_round.len(), Moments::zeros(self.trials));
        }
        for (r, moments) in self.per_round.iter_mut().enumerate() {
            moments.push(collisions_per_round.get(r).copied().unwrap_or(0) as f64);
        }
        self.trials += 1;
    }

    /// Number of trials folded in.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Number of rounds the curve covers (the longest trial's length).
    pub fn len(&self) -> usize {
        self.per_round.len()
    }

    /// Returns `true` if no round was ever executed (or no trial folded).
    pub fn is_empty(&self) -> bool {
        self.per_round.is_empty()
    }

    /// Mean collisions in round `r` across all trials.
    pub fn mean_at(&self, r: usize) -> f64 {
        self.per_round.get(r).map_or(0.0, |m| m.mean())
    }

    /// Sample standard deviation of the round-`r` collision count.
    pub fn std_dev_at(&self, r: usize) -> f64 {
        self.per_round.get(r).map_or(0.0, |m| m.std_dev())
    }

    /// The mean curve as a vector (one entry per round).
    pub fn means(&self) -> Vec<f64> {
        self.per_round.iter().map(Moments::mean).collect()
    }

    /// Mean collisions per round averaged over a round range (empty or
    /// out-of-range windows yield 0) — the bucketing primitive curve tables
    /// use.
    pub fn mean_over(&self, rounds: std::ops::Range<usize>) -> f64 {
        let window: Vec<&Moments> = rounds
            .clone()
            .filter_map(|r| self.per_round.get(r))
            .collect();
        if window.is_empty() {
            0.0
        } else {
            window.iter().map(|m| m.mean()).sum::<f64>() / window.len() as f64
        }
    }
}

impl Serialize for ContentionCurve {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("trials".into(), self.trials.to_value()),
            (
                "mean".into(),
                self.per_round
                    .iter()
                    .map(Moments::mean)
                    .collect::<Vec<f64>>()
                    .to_value(),
            ),
            (
                "m2".into(),
                self.per_round
                    .iter()
                    .map(Moments::m2)
                    .collect::<Vec<f64>>()
                    .to_value(),
            ),
        ])
    }
}

impl Deserialize for ContentionCurve {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("ContentionCurve is missing {name:?}")))
        };
        let trials = usize::from_value(field("trials")?)?;
        let mean = Vec::<f64>::from_value(field("mean")?)?;
        let m2 = Vec::<f64>::from_value(field("m2")?)?;
        if mean.len() != m2.len() {
            return Err(serde::Error::new(format!(
                "ContentionCurve mean/m2 length mismatch ({} vs {})",
                mean.len(),
                m2.len()
            )));
        }
        Ok(ContentionCurve {
            trials,
            per_round: mean
                .into_iter()
                .zip(m2)
                .map(|(mean, m2)| Moments::from_parts(trials, mean, m2))
                .collect(),
        })
    }
}

impl Serialize for Summary {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".into(), self.count.to_value()),
            ("mean".into(), self.mean.to_value()),
            ("std_dev".into(), self.std_dev.to_value()),
            ("min".into(), self.min.to_value()),
            ("max".into(), self.max.to_value()),
            ("median".into(), self.median.to_value()),
            ("p95".into(), self.p95.to_value()),
        ])
    }
}

impl Deserialize for Summary {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("Summary is missing {name:?}")))
        };
        Ok(Summary {
            count: usize::from_value(field("count")?)?,
            mean: f64::from_value(field("mean")?)?,
            std_dev: f64::from_value(field("std_dev")?)?,
            min: f64::from_value(field("min")?)?,
            max: f64::from_value(field("max")?)?,
            median: f64::from_value(field("median")?)?,
            p95: f64::from_value(field("p95")?)?,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ± {:.1} (median {:.1}, range {:.0}–{:.0}, k={})",
            self.mean,
            self.ci95_half_width(),
            self.median,
            self.min,
            self.max,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_all_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s, Summary::default());
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 denominator: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn odd_count_median_is_middle_element() {
        let s = Summary::from_samples(&[9.0, 1.0, 5.0]);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn from_counts_matches_from_samples() {
        let a = Summary::from_counts(&[1, 2, 3, 4]);
        let b = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few = Summary::from_samples(&[1.0, 3.0, 5.0, 7.0]);
        let many: Vec<f64> = (0..100).map(|i| (i % 8) as f64).collect();
        let many = Summary::from_samples(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::from_samples(&[10.0, 12.0, 14.0]);
        let shown = s.to_string();
        assert!(shown.contains("12.0"));
        assert!(shown.contains("k=3"));
    }

    #[test]
    fn p95_is_nearest_rank() {
        // 20 samples: rank ceil(0.95 * 20) = 19, i.e. the 19th smallest.
        let samples: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(Summary::from_samples(&samples).p95, 19.0);
        // Small counts fall back to the maximum.
        assert_eq!(Summary::from_samples(&[3.0, 1.0, 2.0]).p95, 3.0);
        assert_eq!(Summary::from_samples(&[7.0]).p95, 7.0);
        // The known_values sample: rank ceil(0.95 * 8) = 8 -> the maximum.
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.p95, 9.0);
    }

    #[test]
    fn mean_ci95_brackets_the_mean() {
        let s = Summary::from_samples(&[1.0, 3.0, 5.0, 7.0]);
        let (lo, hi) = s.mean_ci95();
        assert!(lo < s.mean && s.mean < hi);
        assert!((hi - s.mean - s.ci95_half_width()).abs() < 1e-12);
        // Degenerate cases collapse to the mean itself.
        assert_eq!(Summary::from_samples(&[4.0]).mean_ci95(), (4.0, 4.0));
    }

    #[test]
    fn relative_ci95_is_scale_free() {
        let s = Summary::from_samples(&[10.0, 12.0, 14.0]);
        let scaled = Summary::from_samples(&[100.0, 120.0, 140.0]);
        assert!((s.relative_ci95() - scaled.relative_ci95()).abs() < 1e-12);
        assert_eq!(Summary::from_samples(&[0.0, 0.0]).relative_ci95(), 0.0);
    }

    #[test]
    fn from_iter_matches_from_samples() {
        let samples = [9.0, 1.0, 5.0, 5.0, 2.0, 8.0, 4.0];
        assert_eq!(
            Summary::from_iter(samples.iter().copied()),
            Summary::from_samples(&samples)
        );
        assert_eq!(Summary::from_iter(std::iter::empty()), Summary::default());
    }

    #[test]
    fn moments_track_summary_statistics() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut moments = Moments::new();
        for (i, &x) in samples.iter().enumerate() {
            moments.push(x);
            let summary = Summary::from_samples(&samples[..=i]);
            assert_eq!(moments.count(), summary.count);
            assert!((moments.mean() - summary.mean).abs() < 1e-12);
            assert!((moments.std_dev() - summary.std_dev).abs() < 1e-12);
            assert!((moments.ci95_half_width() - summary.ci95_half_width()).abs() < 1e-12);
            assert!((moments.relative_ci95() - summary.relative_ci95()).abs() < 1e-12);
        }
    }

    #[test]
    fn moments_degenerate_cases_match_summary() {
        let empty = Moments::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.relative_ci95(), 0.0);

        let mut one = Moments::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.ci95_half_width(), 0.0);

        let mut zeros = Moments::new();
        zeros.push(0.0);
        zeros.push(0.0);
        assert_eq!(zeros.relative_ci95(), 0.0, "zero mean needs no more trials");
    }

    #[test]
    fn wilson_interval_known_values() {
        // All-success at n = 16: the closed form at p̂ = 1 gives
        // lower = n / (n + z²), upper = 1.
        let c = Completion {
            completed: 16,
            trials: 16,
        };
        let (lo, hi) = c.wilson_ci95();
        let z2 = 1.96f64 * 1.96;
        assert!((lo - 16.0 / (16.0 + z2)).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
        assert!((c.wilson_half_width() - z2 / (2.0 * (16.0 + z2))).abs() < 1e-12);
        // All-failure mirrors it.
        let none = Completion {
            completed: 0,
            trials: 16,
        };
        let (lo, hi) = none.wilson_ci95();
        assert!((lo - 0.0).abs() < 1e-12);
        assert!((hi - z2 / (16.0 + z2)).abs() < 1e-12);
        // The interval always brackets the rate and stays in [0, 1].
        for (completed, trials) in [(1usize, 3usize), (2, 5), (7, 9), (50, 100)] {
            let c = Completion { completed, trials };
            let (lo, hi) = c.wilson_ci95();
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
            assert!(lo <= c.rate() && c.rate() <= hi, "{completed}/{trials}");
        }
    }

    #[test]
    fn wilson_width_shrinks_with_more_trials() {
        let mut last = f64::INFINITY;
        for n in [2usize, 8, 32, 128] {
            let c = Completion {
                completed: n / 2,
                trials: n,
            };
            assert!(c.wilson_half_width() < last);
            last = c.wilson_half_width();
        }
        // Degenerate empty batch.
        assert_eq!(Completion::default().wilson_half_width(), 0.0);
        assert_eq!(Completion::default().rate(), 0.0);
    }

    #[test]
    fn completion_display_shows_rate_and_interval() {
        let c = Completion {
            completed: 3,
            trials: 4,
        };
        let shown = c.to_string();
        assert!(shown.starts_with("75%"), "{shown}");
        assert!(shown.contains('['), "{shown}");
    }

    #[test]
    fn contention_curve_streams_like_a_batch_recompute() {
        // Trials of different lengths; shorter trials contribute zeros to
        // the tail rounds.
        let trials: Vec<Vec<usize>> = vec![vec![2, 1, 3], vec![4], vec![0, 2, 0, 5]];
        let mut curve = ContentionCurve::new();
        for t in &trials {
            curve.push_trial(t);
        }
        assert_eq!(curve.trials(), 3);
        assert_eq!(curve.len(), 4);
        // Reference: per-round mean over all trials with implicit zeros.
        for r in 0..4 {
            let samples: Vec<f64> = trials
                .iter()
                .map(|t| t.get(r).copied().unwrap_or(0) as f64)
                .collect();
            let expected = Summary::from_samples(&samples);
            assert!(
                (curve.mean_at(r) - expected.mean).abs() < 1e-12,
                "round {r}"
            );
            assert!(
                (curve.std_dev_at(r) - expected.std_dev).abs() < 1e-12,
                "round {r}"
            );
        }
        assert_eq!(curve.means().len(), 4);
        assert!((curve.mean_at(0) - 2.0).abs() < 1e-12);
        // Out-of-range reads are zero, and bucketed means average in-range
        // rounds only.
        assert_eq!(curve.mean_at(99), 0.0);
        assert!((curve.mean_over(0..2) - (2.0 + 1.0) / 2.0).abs() < 1e-12);
        assert_eq!(curve.mean_over(7..9), 0.0);
    }

    #[test]
    fn contention_curve_order_is_the_trial_index_order() {
        // The accumulator is used strictly in trial-index order; pushing the
        // same trials in that order twice reproduces the same curve exactly.
        let trials: Vec<Vec<usize>> = vec![vec![1, 2], vec![3, 0, 1], vec![2]];
        let mut a = ContentionCurve::new();
        let mut b = ContentionCurve::new();
        for t in &trials {
            a.push_trial(t);
            b.push_trial(t);
        }
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn contention_curve_serde_round_trips_exactly() {
        use serde::{Deserialize, Serialize};
        let mut curve = ContentionCurve::new();
        for t in [vec![2usize, 1, 3], vec![4], vec![0, 2, 0, 5]] {
            curve.push_trial(&t);
        }
        let back = ContentionCurve::from_value(&curve.to_value()).unwrap();
        assert_eq!(curve, back, "m2-based serde must be lossless");
        // And re-serialization is byte-stable.
        assert_eq!(
            serde_json::to_string(&curve).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert!(ContentionCurve::from_value(&serde::Value::Null).is_err());
    }

    #[test]
    fn moments_zeros_matches_pushed_zeros() {
        let mut pushed = Moments::new();
        for _ in 0..5 {
            pushed.push(0.0);
        }
        assert_eq!(Moments::zeros(5), pushed);
        let rebuilt = Moments::from_parts(pushed.count(), pushed.mean(), pushed.m2());
        assert_eq!(rebuilt, pushed);
    }

    #[test]
    fn summary_serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let back = Summary::from_value(&s.to_value()).unwrap();
        assert_eq!(s, back);
        assert!(Summary::from_value(&serde::Value::Null).is_err());
    }
}
