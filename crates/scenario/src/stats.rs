//! Summary statistics over repeated trials.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Summary statistics of a set of measurements (round counts, usually).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (average of the two middle samples for even counts).
    pub median: f64,
    /// 95th percentile (nearest-rank on the sorted samples).
    pub p95: f64,
}

impl Summary {
    /// Computes the summary of `samples`; an empty slice yields all zeros.
    pub fn from_samples(samples: &[f64]) -> Self {
        Summary::from_owned(samples.to_vec())
    }

    /// Computes the summary of integer samples.
    pub fn from_counts(samples: &[usize]) -> Self {
        Summary::from_iter(samples.iter().map(|&x| x as f64))
    }

    /// The single-buffer implementation behind every constructor.
    fn from_owned(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let sorted = samples;
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        // Nearest-rank p95: the smallest sample with at least 95% of the
        // distribution at or below it. Exact for the small trial counts the
        // runner produces (no interpolation to keep stored values reproducible
        // across platforms).
        let rank = ((0.95 * count as f64).ceil() as usize).clamp(1, count);
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
            p95: sorted[rank - 1],
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// The ~95% normal-approximation confidence interval for the mean, as
    /// `(lower, upper)` bounds. Collapses to `(mean, mean)` for fewer than
    /// two samples.
    pub fn mean_ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }

    /// Half-width of the 95% CI relative to the mean — the quantity adaptive
    /// trial allocation compares against a requested precision. Zero when the
    /// mean is zero (a degenerate series needs no more trials).
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95_half_width() / self.mean.abs()
        }
    }
}

/// Computes the summary from any stream of samples, buffering them exactly
/// once (the one buffer the order statistics need to sort). Numerically
/// identical to [`Summary::from_samples`] over the collected sequence: the
/// mean and variance are accumulated in iteration order, before the buffer
/// is sorted.
impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        Summary::from_owned(samples.into_iter().collect())
    }
}

/// Streaming (Welford) accumulator of the moments the adaptive trial
/// allocator's stopping rule needs: count, mean, and sample variance.
///
/// Pushing a sample is O(1), so evaluating the rule after each doubling
/// costs only the new trials — unlike recomputing a [`Summary`] from the
/// full cost vector, which is what this type replaces in the campaign
/// layer. The derived quantities ([`Moments::std_dev`],
/// [`Moments::relative_ci95`]) use the same formulas as `Summary`, and the
/// campaign tests pin that the incremental rule makes the same stopping
/// decisions as a full recompute.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    count: usize,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    /// Folds one sample into the moments.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (`n - 1` denominator; 0 for fewer than two
    /// samples).
    pub fn std_dev(&self) -> f64 {
        if self.count > 1 {
            (self.m2 / (self.count - 1) as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for the
    /// mean (matches [`Summary::ci95_half_width`]).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% CI relative to the mean (matches
    /// [`Summary::relative_ci95`]): the quantity adaptive trial allocation
    /// compares against its requested precision. Zero when the mean is zero.
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95_half_width() / self.mean.abs()
        }
    }
}

impl Serialize for Summary {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".into(), self.count.to_value()),
            ("mean".into(), self.mean.to_value()),
            ("std_dev".into(), self.std_dev.to_value()),
            ("min".into(), self.min.to_value()),
            ("max".into(), self.max.to_value()),
            ("median".into(), self.median.to_value()),
            ("p95".into(), self.p95.to_value()),
        ])
    }
}

impl Deserialize for Summary {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("Summary is missing {name:?}")))
        };
        Ok(Summary {
            count: usize::from_value(field("count")?)?,
            mean: f64::from_value(field("mean")?)?,
            std_dev: f64::from_value(field("std_dev")?)?,
            min: f64::from_value(field("min")?)?,
            max: f64::from_value(field("max")?)?,
            median: f64::from_value(field("median")?)?,
            p95: f64::from_value(field("p95")?)?,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ± {:.1} (median {:.1}, range {:.0}–{:.0}, k={})",
            self.mean,
            self.ci95_half_width(),
            self.median,
            self.min,
            self.max,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_all_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s, Summary::default());
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 denominator: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn odd_count_median_is_middle_element() {
        let s = Summary::from_samples(&[9.0, 1.0, 5.0]);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn from_counts_matches_from_samples() {
        let a = Summary::from_counts(&[1, 2, 3, 4]);
        let b = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn ci_shrinks_with_more_samples() {
        let few = Summary::from_samples(&[1.0, 3.0, 5.0, 7.0]);
        let many: Vec<f64> = (0..100).map(|i| (i % 8) as f64).collect();
        let many = Summary::from_samples(&many);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::from_samples(&[10.0, 12.0, 14.0]);
        let shown = s.to_string();
        assert!(shown.contains("12.0"));
        assert!(shown.contains("k=3"));
    }

    #[test]
    fn p95_is_nearest_rank() {
        // 20 samples: rank ceil(0.95 * 20) = 19, i.e. the 19th smallest.
        let samples: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(Summary::from_samples(&samples).p95, 19.0);
        // Small counts fall back to the maximum.
        assert_eq!(Summary::from_samples(&[3.0, 1.0, 2.0]).p95, 3.0);
        assert_eq!(Summary::from_samples(&[7.0]).p95, 7.0);
        // The known_values sample: rank ceil(0.95 * 8) = 8 -> the maximum.
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.p95, 9.0);
    }

    #[test]
    fn mean_ci95_brackets_the_mean() {
        let s = Summary::from_samples(&[1.0, 3.0, 5.0, 7.0]);
        let (lo, hi) = s.mean_ci95();
        assert!(lo < s.mean && s.mean < hi);
        assert!((hi - s.mean - s.ci95_half_width()).abs() < 1e-12);
        // Degenerate cases collapse to the mean itself.
        assert_eq!(Summary::from_samples(&[4.0]).mean_ci95(), (4.0, 4.0));
    }

    #[test]
    fn relative_ci95_is_scale_free() {
        let s = Summary::from_samples(&[10.0, 12.0, 14.0]);
        let scaled = Summary::from_samples(&[100.0, 120.0, 140.0]);
        assert!((s.relative_ci95() - scaled.relative_ci95()).abs() < 1e-12);
        assert_eq!(Summary::from_samples(&[0.0, 0.0]).relative_ci95(), 0.0);
    }

    #[test]
    fn from_iter_matches_from_samples() {
        let samples = [9.0, 1.0, 5.0, 5.0, 2.0, 8.0, 4.0];
        assert_eq!(
            Summary::from_iter(samples.iter().copied()),
            Summary::from_samples(&samples)
        );
        assert_eq!(Summary::from_iter(std::iter::empty()), Summary::default());
    }

    #[test]
    fn moments_track_summary_statistics() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut moments = Moments::new();
        for (i, &x) in samples.iter().enumerate() {
            moments.push(x);
            let summary = Summary::from_samples(&samples[..=i]);
            assert_eq!(moments.count(), summary.count);
            assert!((moments.mean() - summary.mean).abs() < 1e-12);
            assert!((moments.std_dev() - summary.std_dev).abs() < 1e-12);
            assert!((moments.ci95_half_width() - summary.ci95_half_width()).abs() < 1e-12);
            assert!((moments.relative_ci95() - summary.relative_ci95()).abs() < 1e-12);
        }
    }

    #[test]
    fn moments_degenerate_cases_match_summary() {
        let empty = Moments::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.relative_ci95(), 0.0);

        let mut one = Moments::new();
        one.push(7.0);
        assert_eq!(one.mean(), 7.0);
        assert_eq!(one.ci95_half_width(), 0.0);

        let mut zeros = Moments::new();
        zeros.push(0.0);
        zeros.push(0.0);
        assert_eq!(zeros.relative_ci95(), 0.0, "zero mean needs no more trials");
    }

    #[test]
    fn summary_serde_round_trips() {
        use serde::{Deserialize, Serialize};
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let back = Summary::from_value(&s.to_value()).unwrap();
        assert_eq!(s, back);
        assert!(Summary::from_value(&serde::Value::Null).is_err());
    }
}
