//! Declarative topology specifications.
//!
//! A [`TopologySpec`] is a pure value naming one of the generators in
//! [`dradio_graphs::topology`] together with its parameters. Randomized
//! generators carry their own seed so that the spec alone pins the network
//! down exactly: the same spec always builds the same [`DualGraph`].

use std::fmt;
use std::sync::Arc;

use dradio_graphs::topology::{self, Bracelet, DualClique, GeometricConfig};
use dradio_graphs::{
    auto_backend, csr_bytes_estimate, dense_bytes_estimate, DualGraph, GraphBackend,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::error::{Result, ScenarioError};

/// How a scenario picks the adjacency storage backend for its network.
///
/// Purely an execution/memory knob: both backends enumerate neighbors in
/// the same order, so simulation outcomes — measurements, store bytes, cell
/// keys — are identical under every choice (pinned by the sparse
/// equivalence suite). The default [`BackendChoice::Auto`] lets each
/// generator apply [`auto_backend`]'s density heuristic; the explicit
/// choices exist for tests and memory-bound sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Let the generator's density heuristic decide (the default).
    #[default]
    Auto,
    /// Force the dense bitset-plus-adjacency backend.
    Dense,
    /// Force the compressed-sparse-row backend.
    Csr,
}

serde::serde_enum!(BackendChoice { Auto, Dense, Csr });

impl BackendChoice {
    /// Resolves the choice against a network of `n` nodes and
    /// `expected_edges` edges ([`BackendChoice::Auto`] applies the
    /// [`auto_backend`] heuristic).
    pub fn resolve(self, n: usize, expected_edges: u64) -> GraphBackend {
        match self {
            BackendChoice::Auto => auto_backend(n, expected_edges),
            BackendChoice::Dense => GraphBackend::Dense,
            BackendChoice::Csr => GraphBackend::Csr,
        }
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Dense => "dense",
            BackendChoice::Csr => "csr",
        })
    }
}

/// Every topology generator of [`dradio_graphs::topology`], as a pure,
/// serializable value.
///
/// Randomized families ([`TopologySpec::RandomGeometric`],
/// [`TopologySpec::ErdosRenyiDual`]) embed a dedicated seed, independent of
/// the scenario's execution seed, so a stored spec reproduces its network
/// byte for byte while trial seeds vary freely.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// A reliable clique on `n` nodes (`G = G'`); the static-model baseline.
    Clique {
        /// Number of nodes.
        n: usize,
    },
    /// The paper's Section 3 lower-bound network: two reliable cliques of
    /// size `n/2` joined by one reliable bridge, all cross pairs unreliable.
    DualClique {
        /// Number of nodes (must be even, ≥ 4).
        n: usize,
    },
    /// A dual clique with an explicit bridge `(t_a, t_b)`; exposes the side
    /// metadata used by side-A broadcaster problems.
    DualCliqueWithBridge {
        /// Number of nodes (must be even, ≥ 4).
        n: usize,
        /// Bridge endpoint on side A (index into `0..n/2`).
        t_a: usize,
        /// Bridge endpoint on side B (index into `n/2..n`).
        t_b: usize,
    },
    /// The Theorem 4.3 bracelet with `2k` bands of `k` nodes.
    Bracelet {
        /// Band length (`k ≥ 2`); the network has `2k²` nodes.
        k: usize,
    },
    /// A bracelet with the clasp fixed at band pair `t`.
    BraceletWithClasp {
        /// Band length (`k ≥ 2`).
        k: usize,
        /// Index of the band pair carrying the clasp.
        t: usize,
    },
    /// A path of `n` nodes.
    Line {
        /// Number of nodes (≥ 2).
        n: usize,
    },
    /// A cycle of `n` nodes.
    Ring {
        /// Number of nodes (≥ 3).
        n: usize,
    },
    /// A star: hub 0 with `n - 1` leaves.
    Star {
        /// Number of nodes (≥ 2).
        n: usize,
    },
    /// A chain of reliable cliques joined by single bridges.
    LineOfCliques {
        /// Number of cliques (≥ 1).
        cliques: usize,
        /// Nodes per clique (≥ 1).
        clique_size: usize,
    },
    /// A `cols × rows` grid.
    Grid {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
    },
    /// A `cols × rows` torus (grid with wraparound).
    Torus {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
    },
    /// A balanced tree.
    BalancedTree {
        /// Children per internal node (≥ 1).
        branching: usize,
        /// Tree depth (root is depth 0).
        depth: usize,
    },
    /// A random geometric (unit-disk with grey zone) deployment: `n` points
    /// uniform in a `side × side` square, reliable within distance 1,
    /// unreliable within distance `r`.
    RandomGeometric {
        /// Number of nodes.
        n: usize,
        /// Side length of the deployment square.
        side: f64,
        /// Grey-zone radius (`r ≥ 1`).
        r: f64,
        /// Seed of the deployment's own random stream.
        seed: u64,
    },
    /// A regular grid of points with geometric (distance-based) dual edges.
    GridGeometric {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
        /// Distance between adjacent grid points.
        spacing: f64,
        /// Grey-zone radius (`r ≥ 1`).
        r: f64,
    },
    /// A random dual graph: connected `G(n, p_reliable)` reliable layer plus
    /// i.i.d. dynamic edges with probability `p_dynamic` on the absent pairs.
    ErdosRenyiDual {
        /// Number of nodes.
        n: usize,
        /// Reliable-layer edge probability.
        p_reliable: f64,
        /// Dynamic-layer edge probability.
        p_dynamic: f64,
        /// Seed of the sampling random stream.
        seed: u64,
    },
    /// A *static* sparse Erdős–Rényi network (`G = G'`) sampled by geometric
    /// skip sampling in expected `O(n + m)` time — the scalable counterpart
    /// of [`TopologySpec::ErdosRenyiDual`] for million-node sweeps. No
    /// connectivity retry loop (see
    /// [`topology::sparse_erdos_renyi_dual`]).
    SparseErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Seed of the sampling random stream.
        seed: u64,
    },
    /// A topology supplied directly as a [`DualGraph`] value through
    /// [`ScenarioBuilder::custom_dual`](crate::ScenarioBuilder::custom_dual).
    ///
    /// The name is recorded so serialized specs stay meaningful, but the
    /// graph itself is not serialized: building a deserialized `Custom` spec
    /// fails with [`ScenarioError::CustomUnavailable`] unless the graph is
    /// re-attached.
    Custom {
        /// Descriptive name of the attached graph.
        name: String,
    },
}

serde::serde_enum!(TopologySpec {
    Clique { n: usize },
    DualClique { n: usize },
    DualCliqueWithBridge { n: usize, t_a: usize, t_b: usize },
    Bracelet { k: usize },
    BraceletWithClasp { k: usize, t: usize },
    Line { n: usize },
    Ring { n: usize },
    Star { n: usize },
    LineOfCliques { cliques: usize, clique_size: usize },
    Grid { cols: usize, rows: usize },
    Torus { cols: usize, rows: usize },
    BalancedTree { branching: usize, depth: usize },
    RandomGeometric { n: usize, side: f64, r: f64, seed: u64 },
    GridGeometric { cols: usize, rows: usize, spacing: f64, r: f64 },
    ErdosRenyiDual { n: usize, p_reliable: f64, p_dynamic: f64, seed: u64 },
    SparseErdosRenyi { n: usize, p: f64, seed: u64 },
    Custom { name: String },
});

impl TopologySpec {
    /// A short human-readable label for tables and traces.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Clique { n } => format!("clique({n})"),
            TopologySpec::DualClique { n } => format!("dual-clique({n})"),
            TopologySpec::DualCliqueWithBridge { n, t_a, t_b } => {
                format!("dual-clique({n}, bridge {t_a}-{t_b})")
            }
            TopologySpec::Bracelet { k } => format!("bracelet({k})"),
            TopologySpec::BraceletWithClasp { k, t } => format!("bracelet({k}, clasp {t})"),
            TopologySpec::Line { n } => format!("line({n})"),
            TopologySpec::Ring { n } => format!("ring({n})"),
            TopologySpec::Star { n } => format!("star({n})"),
            TopologySpec::LineOfCliques {
                cliques,
                clique_size,
            } => {
                format!("line-of-cliques({cliques}x{clique_size})")
            }
            TopologySpec::Grid { cols, rows } => format!("grid({cols}x{rows})"),
            TopologySpec::Torus { cols, rows } => format!("torus({cols}x{rows})"),
            TopologySpec::BalancedTree { branching, depth } => {
                format!("tree({branching}^{depth})")
            }
            TopologySpec::RandomGeometric { n, side, r, seed } => {
                format!("geometric({n}, side {side:.2}, r {r:.2}, seed {seed})")
            }
            TopologySpec::GridGeometric {
                cols,
                rows,
                spacing,
                r,
            } => {
                format!("grid-geometric({cols}x{rows}, spacing {spacing:.2}, r {r:.2})")
            }
            TopologySpec::ErdosRenyiDual {
                n,
                p_reliable,
                p_dynamic,
                seed,
            } => {
                format!("er-dual({n}, p {p_reliable:.2}/{p_dynamic:.2}, seed {seed})")
            }
            TopologySpec::SparseErdosRenyi { n, p, seed } => {
                format!("sparse-er({n}, p {p:.4}, seed {seed})")
            }
            TopologySpec::Custom { name } => format!("custom({name})"),
        }
    }

    /// The number of nodes the spec describes, computable without building
    /// the network (`None` for [`TopologySpec::Custom`], whose size lives in
    /// the attached graph). Campaign round-budget rules use this to scale
    /// per-cell budgets with the network size before any topology is built.
    pub fn node_count(&self) -> Option<usize> {
        match *self {
            TopologySpec::Clique { n }
            | TopologySpec::DualClique { n }
            | TopologySpec::DualCliqueWithBridge { n, .. }
            | TopologySpec::Line { n }
            | TopologySpec::Ring { n }
            | TopologySpec::Star { n }
            | TopologySpec::RandomGeometric { n, .. }
            | TopologySpec::ErdosRenyiDual { n, .. }
            | TopologySpec::SparseErdosRenyi { n, .. } => Some(n),
            TopologySpec::Bracelet { k } | TopologySpec::BraceletWithClasp { k, .. } => {
                Some(2 * k * k)
            }
            TopologySpec::LineOfCliques {
                cliques,
                clique_size,
            } => Some(cliques * clique_size),
            TopologySpec::Grid { cols, rows }
            | TopologySpec::Torus { cols, rows }
            | TopologySpec::GridGeometric { cols, rows, .. } => Some(cols * rows),
            TopologySpec::BalancedTree { branching, depth } => {
                // 1 + b + b² + … + b^depth nodes.
                let mut total = 1usize;
                let mut level = 1usize;
                for _ in 0..depth {
                    level = level.saturating_mul(branching);
                    total = total.saturating_add(level);
                }
                Some(total)
            }
            TopologySpec::Custom { .. } => None,
        }
    }

    /// An estimate of the edge count of the *unreliable* layer `G'` (the
    /// larger of the two layers, so the memory-relevant one), computable
    /// without building the network. Exact for the deterministic families,
    /// an expectation for the randomized ones, `None` for
    /// [`TopologySpec::Custom`]. Feeds [`TopologySpec::memory_estimate`]
    /// and the [`auto_backend`] heuristic resolution — never the network
    /// itself, so a loose estimate can never change a measurement.
    pub fn expected_edges(&self) -> Option<u64> {
        let pairs = |n: usize| (n.saturating_mul(n.saturating_sub(1)) / 2) as u64;
        match *self {
            // The lower-bound constructions are genuinely dense: G' carries
            // all (or essentially all) cross pairs.
            TopologySpec::Clique { n }
            | TopologySpec::DualClique { n }
            | TopologySpec::DualCliqueWithBridge { n, .. } => Some(pairs(n)),
            // Bands are k-cliques and every node sees O(k) nodes of the
            // neighbor bands: degree ≤ ~3k over n = 2k² nodes.
            TopologySpec::Bracelet { k } | TopologySpec::BraceletWithClasp { k, .. } => {
                Some(3 * (k as u64).saturating_pow(3))
            }
            TopologySpec::Line { n } | TopologySpec::Star { n } => Some(n.saturating_sub(1) as u64),
            TopologySpec::Ring { n } => Some(n as u64),
            TopologySpec::LineOfCliques {
                cliques,
                clique_size,
            } => Some(
                (cliques as u64).saturating_mul(pairs(clique_size))
                    + cliques.saturating_sub(1) as u64,
            ),
            TopologySpec::Grid { cols, rows } => Some(
                ((cols.saturating_sub(1)).saturating_mul(rows)
                    + cols.saturating_mul(rows.saturating_sub(1))) as u64,
            ),
            TopologySpec::Torus { cols, rows } => Some(2 * cols.saturating_mul(rows) as u64),
            TopologySpec::BalancedTree { .. } => Some(self.node_count()?.saturating_sub(1) as u64),
            // Expected G' degree is the nodes within radius r: n·πr²/side².
            TopologySpec::RandomGeometric { n, side, r, .. } => {
                let density = (n as f64) * std::f64::consts::PI * r * r / (side * side);
                Some(((n as f64 * density / 2.0) as u64).min(pairs(n)))
            }
            // ~π(r/s)² in-radius grid points per node.
            TopologySpec::GridGeometric {
                cols,
                rows,
                spacing,
                r,
            } => {
                let n = cols.saturating_mul(rows);
                let per_node = std::f64::consts::PI * (r / spacing) * (r / spacing);
                Some(((n as f64 * per_node / 2.0) as u64).min(pairs(n)))
            }
            // G' edge probability: reliable, or dynamic on the absent pairs.
            TopologySpec::ErdosRenyiDual {
                n,
                p_reliable,
                p_dynamic,
                ..
            } => {
                let p = p_reliable + (1.0 - p_reliable) * p_dynamic;
                Some((pairs(n) as f64 * p.clamp(0.0, 1.0)) as u64)
            }
            TopologySpec::SparseErdosRenyi { n, p, .. } => {
                Some((pairs(n) as f64 * p.clamp(0.0, 1.0)) as u64)
            }
            TopologySpec::Custom { .. } => None,
        }
    }

    /// The storage backend `choice` resolves to for this spec, and the
    /// estimated bytes the built network (both layers) occupies under it.
    /// `None` when the spec's size is not derivable
    /// ([`TopologySpec::Custom`]). Campaign checks and fleet banners use
    /// this to surface memory budgets before anything is built.
    pub fn memory_estimate(&self, choice: BackendChoice) -> Option<(GraphBackend, u64)> {
        let n = self.node_count()?;
        let m = self.expected_edges()?;
        let backend = choice.resolve(n, m);
        let per_layer = match backend {
            GraphBackend::Dense => dense_bytes_estimate(n, m),
            GraphBackend::Csr => csr_bytes_estimate(n, m),
        };
        Some((backend, per_layer.saturating_mul(2)))
    }

    /// [`TopologySpec::build`] with the storage backend forced by `choice`
    /// ([`BackendChoice::Auto`] is exactly `build()`). Purely a memory/
    /// layout decision — the returned network is structurally identical
    /// under every choice.
    ///
    /// # Errors
    ///
    /// See [`TopologySpec::build`].
    pub fn build_with_backend(&self, choice: BackendChoice) -> Result<BuiltTopology> {
        Ok(self.build()?.with_backend(choice))
    }

    /// Builds the network this spec describes.
    ///
    /// # Errors
    ///
    /// * [`ScenarioError::Topology`] if the underlying generator rejects the
    ///   parameters.
    /// * [`ScenarioError::CustomUnavailable`] for [`TopologySpec::Custom`],
    ///   which can only be built with the graph attached via the builder.
    pub fn build(&self) -> Result<BuiltTopology> {
        let built = match *self {
            TopologySpec::Clique { n } => BuiltTopology::plain(topology::clique(n)),
            TopologySpec::DualClique { n } => BuiltTopology::plain(topology::dual_clique(n)?),
            TopologySpec::DualCliqueWithBridge { n, t_a, t_b } => {
                let dc = topology::dual_clique_with_bridge(n, t_a, t_b)?;
                BuiltTopology {
                    dual: Arc::new(dc.dual().clone()),
                    bracelet: None,
                    dual_clique: Some(dc),
                }
            }
            TopologySpec::Bracelet { k } => {
                let b = topology::bracelet(k)?;
                BuiltTopology {
                    dual: Arc::new(b.dual().clone()),
                    bracelet: Some(b),
                    dual_clique: None,
                }
            }
            TopologySpec::BraceletWithClasp { k, t } => {
                let b = topology::bracelet_with_clasp(k, t)?;
                BuiltTopology {
                    dual: Arc::new(b.dual().clone()),
                    bracelet: Some(b),
                    dual_clique: None,
                }
            }
            TopologySpec::Line { n } => BuiltTopology::plain(topology::line(n)?),
            TopologySpec::Ring { n } => BuiltTopology::plain(topology::ring(n)?),
            TopologySpec::Star { n } => BuiltTopology::plain(topology::star(n)?),
            TopologySpec::LineOfCliques {
                cliques,
                clique_size,
            } => BuiltTopology::plain(topology::line_of_cliques(cliques, clique_size)?),
            TopologySpec::Grid { cols, rows } => BuiltTopology::plain(topology::grid(cols, rows)?),
            TopologySpec::Torus { cols, rows } => {
                BuiltTopology::plain(topology::torus(cols, rows)?)
            }
            TopologySpec::BalancedTree { branching, depth } => {
                BuiltTopology::plain(topology::balanced_tree(branching, depth)?)
            }
            TopologySpec::RandomGeometric { n, side, r, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                BuiltTopology::plain(topology::random_geometric(
                    &GeometricConfig::new(n, side, r),
                    &mut rng,
                )?)
            }
            TopologySpec::GridGeometric {
                cols,
                rows,
                spacing,
                r,
            } => BuiltTopology::plain(topology::grid_geometric(cols, rows, spacing, r)?),
            TopologySpec::ErdosRenyiDual {
                n,
                p_reliable,
                p_dynamic,
                seed,
            } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                BuiltTopology::plain(topology::erdos_renyi_dual(
                    n, p_reliable, p_dynamic, &mut rng,
                )?)
            }
            TopologySpec::SparseErdosRenyi { n, p, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                BuiltTopology::plain(topology::sparse_erdos_renyi_dual(n, p, &mut rng)?)
            }
            TopologySpec::Custom { .. } => {
                return Err(ScenarioError::CustomUnavailable { what: "topology" });
            }
        };
        Ok(built)
    }
}

/// A resolved topology: the [`DualGraph`] to simulate plus the construction
/// metadata some adversaries and problems need (the bracelet band structure
/// for [`BraceletOblivious`](dradio_adversary::BraceletOblivious), the clique
/// sides for side-A broadcaster sets).
///
/// The network is held behind an [`Arc`] so that everything downstream — the
/// [`Scenario`](crate::Scenario), every [`Simulator`](dradio_sim::Simulator)
/// and [`TrialExecutor`](dradio_sim::TrialExecutor) built from it, and the
/// campaign layer's topology cache — shares one graph instance instead of
/// copying the adjacency structure per trial or per cell.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The network, shared by every execution over this topology.
    pub dual: Arc<DualGraph>,
    /// Band/clasp metadata when the spec was a bracelet.
    pub bracelet: Option<Bracelet>,
    /// Side/bridge metadata when the spec was a dual clique with an explicit
    /// bridge.
    pub dual_clique: Option<DualClique>,
}

impl BuiltTopology {
    /// Wraps a bare dual graph (owned or already shared) with no
    /// construction metadata.
    pub fn plain(dual: impl Into<Arc<DualGraph>>) -> Self {
        BuiltTopology {
            dual: dual.into(),
            bracelet: None,
            dual_clique: None,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.dual.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.dual.len() == 0
    }

    /// Maximum degree of the unreliable layer `G'`.
    pub fn max_degree(&self) -> usize {
        self.dual.max_degree()
    }

    /// Returns this topology with its network converted to the backend
    /// `choice` resolves to ([`BackendChoice::Auto`] is a no-op; an already
    /// matching backend is left untouched). Construction metadata carries
    /// over unchanged — it is structural, not storage-dependent.
    pub fn with_backend(mut self, choice: BackendChoice) -> Self {
        let target = match choice {
            BackendChoice::Auto => return self,
            BackendChoice::Dense => GraphBackend::Dense,
            BackendChoice::Csr => GraphBackend::Csr,
        };
        if self.dual.graph_backend() != target || self.dual.g_prime().backend() != target {
            self.dual = Arc::new(self.dual.with_graph_backend(target));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_declarative_spec_builds() {
        let specs = vec![
            TopologySpec::Clique { n: 8 },
            TopologySpec::DualClique { n: 8 },
            TopologySpec::DualCliqueWithBridge {
                n: 8,
                t_a: 0,
                t_b: 4,
            },
            TopologySpec::Bracelet { k: 3 },
            TopologySpec::BraceletWithClasp { k: 3, t: 1 },
            TopologySpec::Line { n: 5 },
            TopologySpec::Ring { n: 5 },
            TopologySpec::Star { n: 5 },
            TopologySpec::LineOfCliques {
                cliques: 3,
                clique_size: 4,
            },
            TopologySpec::Grid { cols: 3, rows: 4 },
            TopologySpec::Torus { cols: 3, rows: 4 },
            TopologySpec::BalancedTree {
                branching: 2,
                depth: 3,
            },
            TopologySpec::RandomGeometric {
                n: 30,
                side: 2.0,
                r: 1.5,
                seed: 5,
            },
            TopologySpec::GridGeometric {
                cols: 4,
                rows: 4,
                spacing: 0.9,
                r: 1.5,
            },
            TopologySpec::ErdosRenyiDual {
                n: 12,
                p_reliable: 0.5,
                p_dynamic: 0.3,
                seed: 7,
            },
            TopologySpec::SparseErdosRenyi {
                n: 40,
                p: 0.2,
                seed: 7,
            },
        ];
        for spec in specs {
            let built = spec
                .build()
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.label()));
            assert!(!built.is_empty(), "{} is empty", spec.label());
            assert!(!spec.label().is_empty());
            assert_eq!(
                spec.node_count(),
                Some(built.len()),
                "{} predicted the wrong node count",
                spec.label()
            );
        }
        assert_eq!(
            TopologySpec::Custom { name: "x".into() }.node_count(),
            None,
            "custom topologies have no derivable size"
        );
    }

    #[test]
    fn randomized_specs_are_reproducible() {
        let spec = TopologySpec::RandomGeometric {
            n: 40,
            side: 2.2,
            r: 1.5,
            seed: 11,
        };
        let a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert_eq!(a.dual, b.dual);

        let other = TopologySpec::RandomGeometric {
            n: 40,
            side: 2.2,
            r: 1.5,
            seed: 12,
        };
        let c = other.build().unwrap();
        assert_ne!(
            a.dual, c.dual,
            "different seeds should give different deployments"
        );
    }

    #[test]
    fn metadata_is_attached_where_available() {
        let b = TopologySpec::Bracelet { k: 3 }.build().unwrap();
        assert!(b.bracelet.is_some());
        assert_eq!(b.len(), 2 * 3 * 3);

        let dc = TopologySpec::DualCliqueWithBridge {
            n: 8,
            t_a: 0,
            t_b: 4,
        }
        .build()
        .unwrap();
        assert!(dc.dual_clique.is_some());
        assert_eq!(dc.dual_clique.unwrap().side_a().len(), 4);
    }

    #[test]
    fn custom_spec_refuses_to_build_without_the_graph() {
        let err = TopologySpec::Custom {
            name: "grey-star".into(),
        }
        .build()
        .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::CustomUnavailable { what: "topology" }
        ));
    }

    #[test]
    fn specs_round_trip_through_serde() {
        for spec in [
            TopologySpec::RandomGeometric {
                n: 40,
                side: 2.2,
                r: 1.5,
                seed: 11,
            },
            TopologySpec::SparseErdosRenyi {
                n: 500,
                p: 0.01,
                seed: 3,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: TopologySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn backend_choice_converts_networks_without_changing_them() {
        let spec = TopologySpec::Grid { cols: 6, rows: 5 };
        let auto = spec.build().unwrap();
        assert_eq!(auto.dual.graph_backend(), GraphBackend::Dense);
        let forced = spec.build_with_backend(BackendChoice::Csr).unwrap();
        assert_eq!(forced.dual.graph_backend(), GraphBackend::Csr);
        // Structurally the same network, differently stored.
        assert_eq!(auto.dual.as_ref(), forced.dual.as_ref());
        // Auto and a matching explicit choice are no-ops.
        assert_eq!(
            spec.build_with_backend(BackendChoice::Auto).unwrap().dual,
            auto.dual
        );
        assert_eq!(
            spec.build_with_backend(BackendChoice::Dense)
                .unwrap()
                .dual
                .graph_backend(),
            GraphBackend::Dense
        );
        // Metadata survives conversion.
        let bracelet = TopologySpec::Bracelet { k: 3 }
            .build_with_backend(BackendChoice::Csr)
            .unwrap();
        assert!(bracelet.bracelet.is_some());
        assert_eq!(bracelet.dual.graph_backend(), GraphBackend::Csr);
    }

    #[test]
    fn backend_choice_serde_and_display() {
        for (choice, text) in [
            (BackendChoice::Auto, "auto"),
            (BackendChoice::Dense, "dense"),
            (BackendChoice::Csr, "csr"),
        ] {
            assert_eq!(choice.to_string(), text);
            let json = serde_json::to_string(&choice).unwrap();
            let back: BackendChoice = serde_json::from_str(&json).unwrap();
            assert_eq!(back, choice);
        }
        assert_eq!(BackendChoice::default(), BackendChoice::Auto);
    }

    #[test]
    fn memory_estimates_resolve_the_heuristic() {
        // A small grid stays dense under Auto; a million-node grid resolves
        // to CSR, and its dense estimate is astronomically larger.
        let small = TopologySpec::Grid { cols: 6, rows: 5 };
        assert_eq!(
            small.memory_estimate(BackendChoice::Auto).unwrap().0,
            GraphBackend::Dense
        );
        let big = TopologySpec::Grid {
            cols: 1000,
            rows: 1000,
        };
        let (backend, csr_bytes) = big.memory_estimate(BackendChoice::Auto).unwrap();
        assert_eq!(backend, GraphBackend::Csr);
        let (_, dense_bytes) = big.memory_estimate(BackendChoice::Dense).unwrap();
        assert!(csr_bytes < 1 << 30, "CSR grid fits in memory: {csr_bytes}");
        assert!(
            dense_bytes > 100 * (1u64 << 30),
            "dense million-node matrix is >100 GiB: {dense_bytes}"
        );
        // Custom topologies have no derivable estimate.
        assert!(TopologySpec::Custom { name: "x".into() }
            .memory_estimate(BackendChoice::Auto)
            .is_none());
        // Expected edges are exact for deterministic families.
        assert_eq!(small.expected_edges(), Some((5 * 5 + 6 * 4) as u64));
    }
}
