//! Property tests for record-mode correctness at the scenario layer: for
//! random declarative scenarios, `RecordMode::None` and `RecordMode::Full`
//! produce identical `TrialOutcome`s, and adaptive adversary classes force
//! history retention no matter what was requested.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_scenario::{
    AdversarySpec, AlgorithmSpec, ProblemSpec, RecordMode, Scenario, ScenarioRunner, TopologySpec,
};
use dradio_sim::AdversaryClass;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (3usize..10).prop_map(|half| TopologySpec::DualClique { n: 2 * half }),
        (6usize..20).prop_map(|n| TopologySpec::Clique { n }),
        (3usize..6, 3usize..6).prop_map(|(cols, rows)| TopologySpec::Grid { cols, rows }),
        (12usize..28, 0u64..20).prop_map(|(n, seed)| TopologySpec::RandomGeometric {
            n,
            side: 2.0,
            r: 1.5,
            seed,
        }),
    ]
}

fn arb_adversary() -> impl Strategy<Value = AdversarySpec> {
    prop_oneof![
        Just(AdversarySpec::StaticNone),
        Just(AdversarySpec::StaticAll),
        (1u32..99).prop_map(|p| AdversarySpec::Iid {
            p: f64::from(p) / 100.0
        }),
        (1u32..99, 1u32..99).prop_map(|(f, r)| AdversarySpec::GilbertElliott {
            p_fail: f64::from(f) / 100.0,
            p_recover: f64::from(r) / 100.0,
        }),
        Just(AdversarySpec::DenseSparse {
            density_factor: None
        }),
        Just(AdversarySpec::GreedyCollision),
        Just(AdversarySpec::Omniscient),
    ]
}

fn arb_algorithm_problem() -> impl Strategy<Value = (AlgorithmSpec, ProblemSpec)> {
    prop_oneof![
        (0usize..3).prop_map(|i| (
            AlgorithmSpec::Global(GlobalAlgorithm::all()[i]),
            ProblemSpec::GlobalFrom(0),
        )),
        (0usize..4, 1usize..5, 0u64..50).prop_map(|(i, count, seed)| (
            AlgorithmSpec::Local(LocalAlgorithm::all()[i]),
            ProblemSpec::LocalRandom { count, seed },
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The satellite-task property: identical `TrialOutcome`s across record
    /// modes for random scenarios.
    #[test]
    fn record_mode_never_changes_trial_outcomes(
        topology in arb_topology(),
        adversary in arb_adversary(),
        (algorithm, problem) in arb_algorithm_problem(),
        seed in 0u64..1_000,
    ) {
        let scenario = Scenario::on(topology)
            .algorithm(algorithm)
            .adversary(adversary)
            .problem(problem)
            .seed(seed)
            .max_rounds(300)
            .build()
            .expect("declarative scenarios build");
        let runner = ScenarioRunner::new(&scenario);
        let fast = runner.collect_trials(2).expect("trials > 0");
        let full = runner
            .record_mode(RecordMode::Full)
            .collect_trials(2)
            .expect("trials > 0");
        prop_assert_eq!(fast, full);
    }

    /// Adaptive adversary classes force history retention (runtime
    /// promotion) even when the scenario asks for no recording; oblivious
    /// ones genuinely skip it.
    #[test]
    fn adaptive_classes_force_history_retention(
        adversary in arb_adversary(),
        seed in 0u64..200,
    ) {
        let class = adversary.class().expect("declarative specs know their class");
        let scenario = Scenario::on(TopologySpec::DualClique { n: 12 })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(adversary)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(200)
            .record_mode(RecordMode::None)
            .build()
            .expect("valid scenario");
        let outcome = scenario.run();
        if class == AdversaryClass::Oblivious {
            prop_assert_eq!(outcome.record_mode, RecordMode::None);
            prop_assert!(outcome.history.is_empty());
        } else {
            prop_assert_eq!(outcome.record_mode, RecordMode::Full);
            prop_assert_eq!(outcome.history.len(), outcome.rounds_executed);
        }
    }
}
