//! Per-round actions and the feedback nodes observe.

use std::fmt;

use crate::message::Message;

/// The action a process takes in one round: transmit a message or listen.
///
/// The radio model is half-duplex: a transmitting node hears nothing in that
/// round, and a listening node receives a message only under the collision
/// rule (exactly one transmitting neighbor).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Broadcast `Message` to all neighbors in this round's topology.
    Transmit(Message),
    /// Listen for a message this round.
    Listen,
}

impl Action {
    /// Returns `true` if the action is a transmission.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit(_))
    }

    /// The transmitted message, if any.
    pub fn message(&self) -> Option<&Message> {
        match self {
            Action::Transmit(m) => Some(m),
            Action::Listen => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Transmit(m) => write!(f, "transmit {m}"),
            Action::Listen => write!(f, "listen"),
        }
    }
}

/// What a process observes at the end of a round.
#[derive(Debug, Clone, PartialEq)]
pub enum Feedback {
    /// Exactly one neighbor transmitted; the message was received.
    Received(Message),
    /// No message was received: either no neighbor transmitted or several
    /// did (collision). The standard model cannot distinguish the two cases.
    Silence,
    /// Two or more neighbors transmitted. Only reported when the simulation
    /// explicitly enables collision detection (a diagnostic mode, not part of
    /// the paper's model).
    Collision,
    /// The process transmitted this round and therefore heard nothing.
    Transmitted,
}

impl Feedback {
    /// The received message, if the feedback is a reception.
    pub fn message(&self) -> Option<&Message> {
        match self {
            Feedback::Received(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if a message was received.
    pub fn is_reception(&self) -> bool {
        matches!(self, Feedback::Received(_))
    }
}

impl fmt::Display for Feedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feedback::Received(m) => write!(f, "received {m}"),
            Feedback::Silence => write!(f, "silence"),
            Feedback::Collision => write!(f, "collision"),
            Feedback::Transmitted => write!(f, "transmitted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use dradio_graphs::NodeId;

    fn msg() -> Message {
        Message::plain(NodeId::new(0), MessageKind::new(1), 7)
    }

    #[test]
    fn action_accessors() {
        let t = Action::Transmit(msg());
        assert!(t.is_transmit());
        assert_eq!(t.message(), Some(&msg()));
        let l = Action::Listen;
        assert!(!l.is_transmit());
        assert_eq!(l.message(), None);
    }

    #[test]
    fn feedback_accessors() {
        let r = Feedback::Received(msg());
        assert!(r.is_reception());
        assert_eq!(r.message(), Some(&msg()));
        for f in [
            Feedback::Silence,
            Feedback::Collision,
            Feedback::Transmitted,
        ] {
            assert!(!f.is_reception());
            assert_eq!(f.message(), None);
        }
    }

    #[test]
    fn display_variants() {
        assert_eq!(Action::Listen.to_string(), "listen");
        assert!(Action::Transmit(msg()).to_string().starts_with("transmit"));
        assert_eq!(Feedback::Silence.to_string(), "silence");
        assert_eq!(Feedback::Collision.to_string(), "collision");
        assert_eq!(Feedback::Transmitted.to_string(), "transmitted");
    }
}
