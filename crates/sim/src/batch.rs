//! Bit-sliced batch trial execution: up to 64 trials per adjacency-word pass.
//!
//! [`TrialExecutor`](crate::TrialExecutor) made trials cheap by reusing one
//! harness across seeds, but every trial still walks the packed adjacency
//! rows alone. A [`BatchExecutor`] runs a *lane group* of up to [`MAX_LANES`]
//! trials in lockstep over one shared
//! [`Arc<DualGraph>`](dradio_graphs::DualGraph): per-node per-trial state
//! packs one bit per trial into `u64` lane masks, so reception and collision
//! detection for the whole group resolve with word-wide AND/OR algebra — one
//! pass over the transmitting neighbors serves all 64 trials.
//!
//! # Equivalence contract
//!
//! Lane `k` of a group produces **exactly** the [`ExecutionOutcome`] of
//! `TrialExecutor::execute(seeds[k], mode)`: per-lane RNG streams are derived
//! with [`derive_stream_seed`] precisely as the scalar path derives them, a
//! per-lane [`StopTracker`] retires finished lanes (masked out while the rest
//! of the group drains), and per-lane [`Metrics`] and collision curves follow
//! the scalar bookkeeping rules. The root `integration_batch` suite pins this
//! across every batchable registered algorithm × adversary × problem class.
//!
//! # What is refused
//!
//! * [`RecordMode::Full`] — retaining per-round history defeats lane packing
//!   (and is what adaptive adversaries force); callers fall back to the
//!   scalar executor.
//! * Adaptive adversary classes — their views borrow the execution history.
//! * Lane groups larger than [`MAX_LANES`].
//!
//! # The two execution paths
//!
//! The **generic path** drives one boxed [`Process`] per (lane, node), so it
//! is correct for every oblivious-adversary scenario; lanes still share each
//! adjacency pass during reception. The **fixed-rate kernel** engages when
//! every process in the network opts into [`BatchProfile::FixedRate`]:
//! transmit decisions for 8 interleaved ChaCha8 streams collapse to one
//! threshold compare per random word, and no process objects run at all.

use std::sync::Arc;

use dradio_graphs::{DualGraph, Edge, Graph, GraphBackend, NeighborRow, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::action::{Action, Feedback};
use crate::config::SimConfig;
use crate::engine::{derive_stream_seed, ExecutionOutcome};
use crate::error::SimError;
use crate::executor::LinkFactory;
use crate::history::History;
use crate::link::{AdversaryClass, AdversarySetup, AdversaryView, LinkProcess};
use crate::message::MessageKind;
use crate::metrics::Metrics;
use crate::process::{Assignment, BatchProfile, Process, ProcessContext, ProcessFactory};
use crate::recorder::RecordMode;
use crate::round::Round;
use crate::stop::{StopCondition, StopTracker};
use crate::Result;

/// Maximum number of trials in one lane group: one bit per trial in a `u64`.
pub const MAX_LANES: usize = 64;

/// Interleaved ChaCha8 streams per block batch in the fixed-rate kernel.
const STREAMS: usize = 8;

/// Lane mask with the low `count` bits set.
fn group_mask(count: usize) -> u64 {
    if count >= MAX_LANES {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// A bit-sliced batch execution harness over one fixed (network × algorithm ×
/// assignment × adversary recipe × stop condition) combination.
///
/// Construction mirrors [`TrialExecutor::new`](crate::TrialExecutor::new) and
/// additionally refuses non-oblivious adversary recipes up front. See the
/// [module documentation](self) for the equivalence contract.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dradio_graphs::topology;
/// use dradio_sim::{
///     Action, Assignment, BatchExecutor, BatchProfile, LinkFactory, Message, MessageKind,
///     Process, ProcessContext, ProcessFactory, RecordMode, Round, SimConfig, StaticLinks,
///     StopCondition, TrialExecutor,
/// };
///
/// struct Beacon(Option<Message>);
/// impl Process for Beacon {
///     fn on_round(&mut self, _round: Round, rng: &mut dyn rand::RngCore) -> Action {
///         match &self.0 {
///             Some(m) if dradio_sim::sampling::bernoulli(rng, 0.5) => Action::Transmit(m.clone()),
///             _ => Action::Listen,
///         }
///     }
///     fn batch_profile(&self) -> BatchProfile {
///         BatchProfile::FixedRate {
///             rate: if self.0.is_some() { 0.5 } else { 0.0 },
///             message: self.0.clone(),
///         }
///     }
/// }
///
/// let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
///     let msg = (ctx.id.index() == 0).then(|| Message::plain(ctx.id, MessageKind::new(1), 7));
///     Box::new(Beacon(msg)) as Box<dyn Process>
/// });
/// let link: LinkFactory = Arc::new(|| Box::new(StaticLinks::none()));
/// let mut batch = BatchExecutor::new(
///     topology::star(5)?,
///     Arc::clone(&factory),
///     Assignment::relays(5),
///     Arc::clone(&link),
///     StopCondition::max_rounds(),
///     SimConfig::default().with_max_rounds(8),
/// )?;
/// let seeds: Vec<u64> = (0..10).collect();
/// let outcomes = batch.execute_group(&seeds, RecordMode::None)?;
/// // Lane k is bit-for-bit the scalar trial with seeds[k].
/// let mut scalar = TrialExecutor::new(
///     topology::star(5)?,
///     factory,
///     Assignment::relays(5),
///     link,
///     StopCondition::max_rounds(),
///     SimConfig::default().with_max_rounds(8),
/// )?;
/// for (k, outcome) in outcomes.iter().enumerate() {
///     assert_eq!(*outcome, scalar.execute(seeds[k], RecordMode::None));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BatchExecutor {
    dual: Arc<DualGraph>,
    factory: ProcessFactory,
    assignment: Assignment,
    config: SimConfig,
    link_factory: LinkFactory,
    contexts: Vec<ProcessContext>,
    tracker_template: StopTracker,
    kernel: Option<KernelPlan>,
    force_generic: bool,
    lanes: Vec<Lane>,
    shared: Shared,
    kscratch: KernelScratch,
}

/// Per-lane state: everything one trial owns privately. The word-parallel
/// passes live in [`Shared`]; a lane only holds what must not leak between
/// trials (RNG streams, processes, the adversary, the stop tracker, and the
/// outcome bookkeeping).
struct Lane {
    processes: Vec<Box<dyn Process>>,
    actions: Vec<Action>,
    node_rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    link: Box<dyn LinkProcess>,
    link_spent: bool,
    tracker: StopTracker,
    active_edges: Vec<Edge>,
    metrics: Metrics,
    collisions_per_round: Vec<usize>,
    rounds_executed: usize,
    completion_round: Option<Round>,
    completed: bool,
}

impl Lane {
    fn new(tracker: StopTracker, link: Box<dyn LinkProcess>) -> Self {
        Lane {
            processes: Vec::new(),
            actions: Vec::new(),
            node_rngs: Vec::new(),
            adversary_rng: ChaCha8Rng::seed_from_u64(0),
            link,
            link_spent: false,
            tracker,
            active_edges: Vec::new(),
            metrics: Metrics::default(),
            collisions_per_round: Vec::new(),
            rounds_executed: 0,
            completion_round: None,
            completed: false,
        }
    }
}

/// Word-parallel scratch shared by every lane of a group: per-node lane
/// masks, the packed "any lane transmits" bitset, the saturating ≥1/≥2
/// reception counters, and the per-(node, lane) sender table. All buffers
/// are sized once at construction and reused across groups.
struct Shared {
    /// `transmit[u]`: lane mask of trials in which node `u` transmits.
    transmit: Vec<u64>,
    /// Packed bitset over nodes: bit `v` set iff `transmit[v] != 0`.
    tx_any: Vec<u64>,
    /// Lanes in which a listener heard ≥ 1 transmitting neighbor.
    ge1: Vec<u64>,
    /// Lanes in which a listener heard ≥ 2 transmitting neighbors.
    ge2: Vec<u64>,
    /// `senders[u * MAX_LANES + lane]`: the unique transmitting neighbor of
    /// `u` in `lane`, valid only where `ge1 & !ge2` is set this round.
    senders: Vec<u32>,
    /// Packed duplicate-check rows for one lane's link decision
    /// (`words_per_row` words per node, cleared lazily between lanes; empty
    /// on the CSR backend, which uses `dedup_lists` instead).
    dedup_rows: Vec<u64>,
    /// Row-word indices written into `dedup_rows` since the last clear.
    dedup_touched: Vec<usize>,
    /// Per-node duplicate-check lists — the CSR backend's O(n + edges)
    /// replacement for the `dedup_rows` bit matrix, whose n × words
    /// footprint would itself be the quadratic allocation the sparse
    /// backend avoids. Only the canonical (lo, hi) direction is recorded.
    dedup_lists: Vec<Vec<NodeId>>,
    /// Node indices written into `dedup_lists` since the last clear.
    dedup_list_touched: Vec<usize>,
    words_per_row: usize,
    /// Packed bitset over nodes: bit `u` set iff `u`'s static row is
    /// complete (degree `n - 1`) — such listeners take the subtract-self
    /// fast path in [`fold_reception`] instead of re-scanning the
    /// transmitter set.
    complete_rows: Vec<u64>,
    /// Whether any bit of `complete_rows` is set (skips the global fold on
    /// sparse graphs where no listener can use it).
    has_complete_rows: bool,
    /// `first_tx[v]`: lanes whose first transmitter in node order is `v`
    /// this round (valid only when `has_complete_rows`).
    first_tx: Vec<u64>,
    /// `second_tx[v]`: lanes whose second transmitter in node order is `v`.
    second_tx: Vec<u64>,
}

impl Shared {
    fn new(g: &Graph, has_dynamic_edges: bool) -> Self {
        let n = g.len();
        let words_per_row = g.row_words();
        let sparse = g.backend() == GraphBackend::Csr;
        let mut complete_rows = vec![0u64; words_per_row];
        let mut has_complete_rows = false;
        for u in 0..n {
            if g.degree(NodeId::new(u)) == n - 1 {
                complete_rows[u / 64] |= 1u64 << (u % 64);
                has_complete_rows = true;
            }
        }
        Shared {
            transmit: vec![0u64; n],
            tx_any: vec![0u64; words_per_row],
            ge1: vec![0u64; n],
            ge2: vec![0u64; n],
            senders: vec![0u32; n * MAX_LANES],
            dedup_rows: if has_dynamic_edges && !sparse {
                vec![0u64; n.saturating_mul(words_per_row)]
            } else {
                Vec::new()
            },
            dedup_touched: Vec::new(),
            dedup_lists: if has_dynamic_edges && sparse {
                vec![Vec::new(); n]
            } else {
                Vec::new()
            },
            dedup_list_touched: Vec::new(),
            words_per_row,
            complete_rows,
            has_complete_rows,
            first_tx: if has_complete_rows {
                vec![0u64; n]
            } else {
                Vec::new()
            },
            second_tx: if has_complete_rows {
                vec![0u64; n]
            } else {
                Vec::new()
            },
        }
    }

    /// Marks the dynamic edge `(u, v)` (endpoints already normalized by
    /// [`Edge`]) as seen this lane; returns `true` if it already was.
    fn dedup_test_and_set(&mut self, u: usize, v: usize) -> bool {
        if self.dedup_lists.is_empty() {
            let idx = u * self.words_per_row + v / 64;
            let bit = 1u64 << (v % 64);
            let seen = self.dedup_rows[idx] & bit != 0;
            if !seen {
                if self.dedup_rows[idx] == 0 {
                    self.dedup_touched.push(idx);
                }
                self.dedup_rows[idx] |= bit;
            }
            seen
        } else {
            // CSR backend: per-lane decisions stay small, so a linear probe
            // of the node's list beats maintaining packed rows.
            let seen = self.dedup_lists[u].contains(&NodeId::new(v));
            if !seen {
                if self.dedup_lists[u].is_empty() {
                    self.dedup_list_touched.push(u);
                }
                self.dedup_lists[u].push(NodeId::new(v));
            }
            seen
        }
    }

    /// Zeroes the duplicate-check words/lists touched since the last clear.
    fn dedup_clear(&mut self) {
        while let Some(idx) = self.dedup_touched.pop() {
            self.dedup_rows[idx] = 0;
        }
        while let Some(u) = self.dedup_list_touched.pop() {
            self.dedup_lists[u].clear();
        }
    }
}

/// Precomputed fixed-rate transmit plan: which nodes flip a coin each round
/// (and against what integer threshold), which always transmit, and the
/// message kind each transmitting node delivers.
struct KernelPlan {
    /// Nodes with `0 < rate < 1`: `(node, threshold)` with
    /// `bernoulli(rng, rate)  ⟺  (next_u64() >> 11) < threshold`.
    coin: Vec<(u32, u64)>,
    /// Nodes with `rate >= 1` (transmit every round).
    always: Vec<u32>,
    /// Message kind per node (meaningful only for transmitting nodes).
    kinds: Vec<MessageKind>,
}

impl KernelPlan {
    /// Probes one process per node; `None` unless every profile is
    /// `FixedRate` with a coherent message.
    fn probe(contexts: &[ProcessContext], factory: &ProcessFactory) -> Option<KernelPlan> {
        let mut coin = Vec::new();
        let mut always = Vec::new();
        let mut kinds = vec![MessageKind::new(0); contexts.len()];
        for (u, ctx) in contexts.iter().enumerate() {
            match (factory)(ctx).batch_profile() {
                BatchProfile::Generic => return None,
                BatchProfile::FixedRate { rate, message } => {
                    if rate <= 0.0 {
                        continue; // never transmits; the message is irrelevant
                    }
                    // A positive rate with no message violates the profile
                    // contract; treat the process as generic rather than
                    // deliver nothing.
                    let message = message?;
                    kinds[u] = message.kind();
                    if rate >= 1.0 {
                        always.push(u as u32);
                    } else {
                        coin.push((u as u32, bernoulli_threshold(rate)));
                    }
                }
            }
        }
        Some(KernelPlan {
            coin,
            always,
            kinds,
        })
    }
}

/// Kernel-only scratch: interleaved ChaCha8 keys per (coin node, lane) and
/// an 8-round transmit-mask buffer refilled one block batch at a time.
struct KernelScratch {
    /// `keys[ci * MAX_LANES + lane]`: ChaCha key of coin node `ci`'s stream
    /// in `lane` (zero key for lanes beyond the group size).
    keys: Vec<[u32; 8]>,
    /// `t_buf[j * n + u]`: node `u`'s transmit lane mask for round
    /// `8 * block + j`.
    t_buf: Vec<u64>,
}

impl KernelScratch {
    fn new() -> Self {
        KernelScratch {
            keys: Vec::new(),
            t_buf: Vec::new(),
        }
    }
}

/// The integer threshold `T` with
/// `uniform_f64(x) < rate  ⟺  (x >> 11) < T` for `0 < rate < 1`.
///
/// `uniform_f64` is `(x >> 11) as f64 * 2⁻⁵³`; the 53-bit integer converts
/// exactly and the power-of-two scale is lossless, so the comparison is the
/// real-number `k < rate·2⁵³` — which holds iff `k < ceil(rate·2⁵³)` whether
/// or not `rate·2⁵³` is an integer. `rate·2⁵³` itself is an exact f64
/// product (power-of-two scaling of a finite f64 below 1).
fn bernoulli_threshold(rate: f64) -> u64 {
    (rate * 9_007_199_254_740_992.0).ceil() as u64
}

/// One ChaCha quarter-round applied across all interleaved streams.
// Indexed loops: each statement reads row `b`/`c`/`d` while writing row `a`
// (etc.) of the same array, which iterator adapters cannot split-borrow, and
// the stream-major index form is the shape the auto-vectorizer fuses into
// one vector op per statement.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn quarter_round(s: &mut [[u32; STREAMS]; 16], a: usize, b: usize, c: usize, d: usize) {
    for i in 0..STREAMS {
        s[a][i] = s[a][i].wrapping_add(s[b][i]);
    }
    for i in 0..STREAMS {
        s[d][i] = (s[d][i] ^ s[a][i]).rotate_left(16);
    }
    for i in 0..STREAMS {
        s[c][i] = s[c][i].wrapping_add(s[d][i]);
    }
    for i in 0..STREAMS {
        s[b][i] = (s[b][i] ^ s[c][i]).rotate_left(12);
    }
    for i in 0..STREAMS {
        s[a][i] = s[a][i].wrapping_add(s[b][i]);
    }
    for i in 0..STREAMS {
        s[d][i] = (s[d][i] ^ s[a][i]).rotate_left(8);
    }
    for i in 0..STREAMS {
        s[c][i] = s[c][i].wrapping_add(s[d][i]);
    }
    for i in 0..STREAMS {
        s[b][i] = (s[b][i] ^ s[c][i]).rotate_left(7);
    }
}

/// One 64-byte ChaCha8 block at `counter` for [`STREAMS`] independent keys,
/// word-major (`out[word][stream]`), bit-exact with `ChaCha8Rng`: word `w`
/// of block `b` is the `16·b + w`-th `next_u32` of the stream.
// lint: hot-path
fn chacha8_blocks(keys: &[[u32; 8]], counter: u64, out: &mut [[u32; STREAMS]; 16]) {
    let mut s: [[u32; STREAMS]; 16] = [[0; STREAMS]; 16];
    let consts = [0x6170_7865u32, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    for w in 0..4 {
        s[w] = [consts[w]; STREAMS];
    }
    for k in 0..8 {
        for i in 0..STREAMS {
            s[4 + k][i] = keys[i][k];
        }
    }
    s[12] = [counter as u32; STREAMS];
    s[13] = [(counter >> 32) as u32; STREAMS];
    let input = s;
    for _ in 0..4 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for w in 0..16 {
        for i in 0..STREAMS {
            s[w][i] = s[w][i].wrapping_add(input[w][i]);
        }
    }
    *out = s;
}
// lint: end-hot-path

/// Expands a `seed_from_u64` seed into a ChaCha key exactly as the `rand`
/// shim does (a SplitMix64 stream split into 32-bit halves).
fn key_from_u64(mut state: u64) -> [u32; 8] {
    let mut key = [0u32; 8];
    for pair in 0..4 {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        key[2 * pair] = z as u32;
        key[2 * pair + 1] = (z >> 32) as u32;
    }
    key
}

/// Adds a lane mask into a 4-plane vertical (bit-sliced) counter. Callers
/// must flush before 16 adds accumulate.
#[inline(always)]
fn counter_add(planes: &mut [u64; 4], mut mask: u64) {
    for plane in planes.iter_mut() {
        let carry = *plane & mask;
        *plane ^= mask;
        mask = carry;
    }
    debug_assert_eq!(mask, 0, "vertical counter overflow: flush more often");
}

/// Drains a 4-plane vertical counter into per-lane totals.
fn counter_flush(planes: &mut [u64; 4], out: &mut [usize; MAX_LANES]) {
    for (i, plane) in planes.iter_mut().enumerate() {
        let mut bits = *plane;
        *plane = 0;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            out[lane] += 1 << i;
        }
    }
}

/// Runs one lane's link decision for `round`, filtering it down to genuine
/// deduplicated dynamic edges exactly as the scalar executor does (rejected
/// proposals are counted into the lane's metrics).
// lint: hot-path
fn decide_lane_edges(dual: &DualGraph, shared: &mut Shared, lane: &mut Lane, round: Round) {
    let n = dual.len();
    let decision = {
        let view = AdversaryView::new(round, n, None, None, None);
        lane.link.decide(&view, &mut lane.adversary_rng)
    };
    lane.active_edges.clear();
    for edge in decision.edges() {
        let (u, v) = edge.endpoints();
        let is_dynamic = dual.g_prime().has_edge(u, v) && !dual.g().has_edge(u, v);
        if !is_dynamic {
            lane.metrics.rejected_link_edges += 1;
        } else if !shared.dedup_test_and_set(u.index(), v.index()) {
            lane.active_edges.push(*edge);
        }
    }
    shared.dedup_clear();
}
// lint: end-hot-path

/// Resolves reception for every lane at once: folds each transmitting
/// neighbor's lane mask into saturating ≥1/≥2 counters per listener
/// (recording the sender wherever a lane first reaches 1), then scatters
/// each lane's active dynamic edges as single-bit updates — the fold
/// commutes, so static-then-dynamic order matches the scalar count.
///
/// Listeners whose static row is complete (degree `n - 1`) share one global
/// fold over the transmitter set instead of each re-scanning it: a listener
/// `u` hears exactly the transmitters minus `u` itself, and "minus one
/// element" resolves with ≥1/≥2/≥3 saturation plus each lane's first and
/// second transmitter. That turns per-listener work from O(transmitters)
/// into O(1) words — the difference between ~n² and ~n bit operations per
/// round on a clique.
// lint: hot-path
fn fold_reception(dual: &DualGraph, shared: &mut Shared, lanes: &[Lane], live: u64) {
    let g = dual.g();
    let n = g.len();
    let words = shared.words_per_row;
    let mut any_transmit = false;
    for w in shared.tx_any.iter_mut() {
        *w = 0;
    }
    for u in 0..n {
        if shared.transmit[u] != 0 {
            shared.tx_any[u / 64] |= 1u64 << (u % 64);
            any_transmit = true;
        }
    }
    shared.ge1[..n].fill(0);
    shared.ge2[..n].fill(0);
    if any_transmit {
        // Global fold, shared by every complete-row listener: saturating
        // ≥1/≥2/≥3 lane counters over all transmitters in node order, plus
        // each lane's first and second transmitter (every lane crosses each
        // threshold once, so the per-bit loops run at most 64 times each).
        let (mut g1, mut g2, mut g3) = (0u64, 0u64, 0u64);
        let mut s1 = [0u32; MAX_LANES];
        let mut s2 = [0u32; MAX_LANES];
        if shared.has_complete_rows {
            shared.first_tx[..n].fill(0);
            shared.second_tx[..n].fill(0);
            for w in 0..words {
                let mut bits = shared.tx_any[w];
                while bits != 0 {
                    let v = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let tv = shared.transmit[v];
                    let mut new1 = tv & !g1;
                    shared.first_tx[v] = new1;
                    while new1 != 0 {
                        let lane = new1.trailing_zeros() as usize;
                        new1 &= new1 - 1;
                        s1[lane] = v as u32;
                    }
                    let mut new2 = tv & g1 & !g2;
                    shared.second_tx[v] = new2;
                    while new2 != 0 {
                        let lane = new2.trailing_zeros() as usize;
                        new2 &= new2 - 1;
                        s2[lane] = v as u32;
                    }
                    g3 |= g2 & tv;
                    g2 |= g1 & tv;
                    g1 |= tv;
                }
            }
        }
        let exactly1 = g1 & !g2;
        let exactly2 = g2 & !g3;
        for u in 0..n {
            if shared.complete_rows[u / 64] >> (u % 64) & 1 == 1 {
                // Subtract-self: u hears every transmitter but itself. A
                // lane leaves ≥1 only if u was its sole transmitter, and
                // leaves ≥2 only if the lane had exactly two and u was one
                // of them (≥3 minus one is still ≥2).
                let ftx = shared.first_tx[u];
                let involved = ftx | shared.second_tx[u];
                let ge1 = g1 & !(exactly1 & ftx);
                let ge2 = g2 & !(exactly2 & involved);
                let mut delivered = ge1 & !ge2;
                while delivered != 0 {
                    let lane = delivered.trailing_zeros() as usize;
                    delivered &= delivered - 1;
                    // The unique audible transmitter, in scalar neighbor
                    // order: the lane's first transmitter unless that was
                    // u itself, then its second.
                    shared.senders[u * MAX_LANES + lane] = if s1[lane] == u as u32 {
                        s2[lane]
                    } else {
                        s1[lane]
                    };
                }
                shared.ge1[u] = ge1;
                shared.ge2[u] = ge2;
                continue;
            }
            let mut ge1 = 0u64;
            let mut ge2 = 0u64;
            match g.neighbor_row(NodeId::new(u)) {
                NeighborRow::Dense(row) => {
                    'row: for (w, &row_bits) in row.iter().enumerate().take(words) {
                        let mut hits = row_bits & shared.tx_any[w];
                        while hits != 0 {
                            let v = w * 64 + hits.trailing_zeros() as usize;
                            hits &= hits - 1;
                            let tv = shared.transmit[v];
                            let mut newly = tv & !ge1;
                            while newly != 0 {
                                let lane = newly.trailing_zeros() as usize;
                                newly &= newly - 1;
                                shared.senders[u * MAX_LANES + lane] = v as u32;
                            }
                            ge2 |= ge1 & tv;
                            ge1 |= tv;
                            if ge2 == live {
                                // Every live lane already collided at this
                                // listener; further transmitters cannot
                                // change any category.
                                break 'row;
                            }
                        }
                    }
                }
                NeighborRow::Sparse(row) => {
                    // CSR backend: the sorted neighbor walk visits the same
                    // transmitters in the same ascending order as the word
                    // scan, so the fold (and each lane's recorded first
                    // sender) is identical.
                    'sparse: for &v in row {
                        let v = v.index();
                        let tv = shared.transmit[v];
                        if tv == 0 {
                            continue;
                        }
                        let mut newly = tv & !ge1;
                        while newly != 0 {
                            let lane = newly.trailing_zeros() as usize;
                            newly &= newly - 1;
                            shared.senders[u * MAX_LANES + lane] = v as u32;
                        }
                        ge2 |= ge1 & tv;
                        ge1 |= tv;
                        if ge2 == live {
                            break 'sparse;
                        }
                    }
                }
            }
            shared.ge1[u] = ge1;
            shared.ge2[u] = ge2;
        }
    }
    let mut mask = live;
    while mask != 0 {
        let lane_idx = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let bit = 1u64 << lane_idx;
        for edge in &lanes[lane_idx].active_edges {
            let (a, b) = edge.endpoints();
            let (a, b) = (a.index(), b.index());
            if shared.transmit[b] & bit != 0 {
                if shared.ge1[a] & bit == 0 {
                    shared.ge1[a] |= bit;
                    shared.senders[a * MAX_LANES + lane_idx] = b as u32;
                } else {
                    shared.ge2[a] |= bit;
                }
            }
            if shared.transmit[a] & bit != 0 {
                if shared.ge1[b] & bit == 0 {
                    shared.ge1[b] |= bit;
                    shared.senders[b * MAX_LANES + lane_idx] = a as u32;
                } else {
                    shared.ge2[b] |= bit;
                }
            }
        }
    }
}
// lint: end-hot-path

/// End-of-round bookkeeping for every live lane: per-lane round counts and
/// collision curve, then stop evaluation — a finished lane retires with
/// `completion_round = round`, exactly like the scalar break.
// lint: hot-path
fn finish_round(
    lanes: &mut [Lane],
    live: &mut u64,
    round: Round,
    round_collisions: &[usize; MAX_LANES],
    records_collisions: bool,
) {
    let mut mask = *live;
    while mask != 0 {
        let lane_idx = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let lane = &mut lanes[lane_idx];
        lane.rounds_executed += 1;
        if records_collisions {
            lane.collisions_per_round.push(round_collisions[lane_idx]);
        }
        lane.metrics.rounds = lane.rounds_executed;
        if lane.tracker.is_done() {
            lane.completion_round = Some(round);
            lane.completed = true;
            *live &= !(1u64 << lane_idx);
        }
    }
}
// lint: end-hot-path

impl BatchExecutor {
    /// Builds a batch executor over the same components as
    /// [`TrialExecutor::new`](crate::TrialExecutor::new).
    ///
    /// # Errors
    ///
    /// Everything the scalar constructor rejects, plus
    /// [`SimError::UnsupportedBatch`] when `link_factory` produces a
    /// non-oblivious adversary (adaptive views borrow per-round history the
    /// lanes do not retain).
    ///
    /// # Panics
    ///
    /// Panics if `stop` references nodes outside the network (a programming
    /// error in the experiment setup, not a runtime condition).
    pub fn new(
        dual: impl Into<Arc<DualGraph>>,
        factory: ProcessFactory,
        assignment: Assignment,
        link_factory: LinkFactory,
        stop: StopCondition,
        config: SimConfig,
    ) -> Result<Self> {
        config.validate()?;
        let dual = dual.into();
        let n = dual.len();
        if n == 0 {
            return Err(SimError::EmptyNetwork);
        }
        if assignment.len() != n {
            return Err(SimError::AssignmentSizeMismatch {
                network: n,
                assignment: assignment.len(),
            });
        }
        if let Some(max_index) = stop.max_node_index() {
            assert!(
                max_index < n,
                "stop condition references node {max_index} but the network has {n} nodes"
            );
        }
        let probe = link_factory();
        if probe.class() != AdversaryClass::Oblivious {
            return Err(SimError::UnsupportedBatch {
                reason: format!(
                    "adversary class `{}` needs per-round history; run on the scalar executor",
                    probe.class()
                ),
            });
        }
        let max_degree = dual.max_degree();
        let contexts: Vec<ProcessContext> = NodeId::all(n)
            .map(|u| ProcessContext::new(u, n, max_degree, assignment.role(u)))
            .collect();
        let kernel = KernelPlan::probe(&contexts, &factory);
        let shared = Shared::new(dual.g(), !dual.is_static());
        let tracker = StopTracker::new(stop, n);
        let tracker_template = tracker.clone();
        let lanes = vec![Lane::new(tracker, probe)];
        Ok(BatchExecutor {
            dual,
            factory,
            assignment,
            config,
            link_factory,
            contexts,
            tracker_template,
            kernel,
            force_generic: false,
            lanes,
            shared,
            kscratch: KernelScratch::new(),
        })
    }

    /// The network being simulated.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// The configuration in effect (its seed and record mode are superseded
    /// per group by [`BatchExecutor::execute_group`]'s arguments).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Returns `true` if every process opted into
    /// [`BatchProfile::FixedRate`], so groups run on the word-parallel
    /// kernel instead of boxed per-lane processes.
    pub fn has_kernel(&self) -> bool {
        self.kernel.is_some()
    }

    /// Forces the generic boxed-process path even when the fixed-rate
    /// kernel is available (a diagnostic knob; the equivalence suite uses
    /// it to pin kernel == generic == scalar).
    pub fn set_force_generic(&mut self, force: bool) {
        self.force_generic = force;
    }

    /// Runs one independent trial per seed, all lanes in lockstep, and
    /// returns the per-lane outcomes in seed order. Lane `k` is
    /// outcome-for-outcome `TrialExecutor::execute(seeds[k], record_mode)`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedBatch`] when `seeds` exceeds [`MAX_LANES`],
    /// `record_mode` is [`RecordMode::Full`], or the link factory turned
    /// adaptive since construction.
    pub fn execute_group(
        &mut self,
        seeds: &[u64],
        record_mode: RecordMode,
    ) -> Result<Vec<ExecutionOutcome>> {
        let count = seeds.len();
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > MAX_LANES {
            return Err(SimError::UnsupportedBatch {
                reason: format!("lane groups hold at most {MAX_LANES} trials, got {count}"),
            });
        }
        if record_mode.records_history() {
            return Err(SimError::UnsupportedBatch {
                reason: "RecordMode::Full retains per-round history; run on the scalar executor"
                    .into(),
            });
        }
        let kernel = self.kernel.is_some() && !self.force_generic;
        self.prepare_group(seeds, kernel)?;
        if !self.lanes[0].tracker.is_done() {
            let live = group_mask(count);
            if kernel {
                self.run_kernel(live, record_mode);
            } else {
                self.run_generic(live, record_mode);
            }
        } else {
            // Degenerate stop conditions (e.g. an empty receiver set) are
            // complete before any round executes — in every lane at once,
            // since all lanes share the condition.
            for lane in self.lanes[..count].iter_mut() {
                lane.completed = true;
            }
        }
        let n = self.dual.len();
        Ok(self.lanes[..count]
            .iter_mut()
            .map(|lane| ExecutionOutcome {
                completed: lane.completed,
                rounds_executed: lane.rounds_executed,
                completion_round: lane.completion_round,
                history: History::new(n),
                metrics: lane.metrics,
                record_mode,
                collisions_per_round: std::mem::take(&mut lane.collisions_per_round),
            })
            .collect())
    }

    /// Reseeds (and where needed rebuilds) per-lane state for a new group
    /// and runs the start-of-execution hooks, mirroring the scalar
    /// executor's per-trial reseed step lane by lane.
    fn prepare_group(&mut self, seeds: &[u64], kernel: bool) -> Result<()> {
        let n = self.dual.len();
        while self.lanes.len() < seeds.len() {
            self.lanes.push(Lane::new(
                self.tracker_template.clone(),
                (self.link_factory)(),
            ));
        }
        for (lane_idx, &seed) in seeds.iter().enumerate() {
            let lane = &mut self.lanes[lane_idx];
            if lane.link_spent && !lane.link.reset() {
                lane.link = (self.link_factory)();
            }
            lane.link_spent = true;
            if lane.link.class() != AdversaryClass::Oblivious {
                return Err(SimError::UnsupportedBatch {
                    reason: format!(
                        "adversary class `{}` needs per-round history; run on the scalar executor",
                        lane.link.class()
                    ),
                });
            }
            lane.adversary_rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed, u64::MAX));
            lane.tracker.reset();
            lane.metrics = Metrics::default();
            lane.collisions_per_round.clear();
            lane.active_edges.clear();
            lane.rounds_executed = 0;
            lane.completion_round = None;
            lane.completed = false;
            if !kernel {
                lane.node_rngs
                    .resize_with(n, || ChaCha8Rng::seed_from_u64(0));
                for (u, rng) in lane.node_rngs.iter_mut().enumerate() {
                    *rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed, u as u64));
                }
                lane.processes.clear();
                for ctx in &self.contexts {
                    lane.processes.push((self.factory)(ctx));
                }
            }
            let setup = AdversarySetup {
                dual: &self.dual,
                factory: &self.factory,
                assignment: &self.assignment,
                horizon: self.config.max_rounds(),
            };
            lane.link.on_start(&setup, &mut lane.adversary_rng);
            if !kernel {
                for (u, process) in lane.processes.iter_mut().enumerate() {
                    process.on_start(&mut lane.node_rngs[u]);
                }
            }
        }
        if kernel {
            if let Some(plan) = &self.kernel {
                let ks = &mut self.kscratch;
                ks.keys.resize(plan.coin.len() * MAX_LANES, [0u32; 8]);
                for (ci, &(node, _)) in plan.coin.iter().enumerate() {
                    for lane_idx in 0..MAX_LANES {
                        ks.keys[ci * MAX_LANES + lane_idx] = match seeds.get(lane_idx) {
                            Some(&seed) => key_from_u64(derive_stream_seed(seed, u64::from(node))),
                            None => [0u32; 8],
                        };
                    }
                }
                ks.t_buf.resize(STREAMS * n, 0);
            }
        }
        Ok(())
    }

    /// The generic path: one boxed process per (lane, node), lock-stepped;
    /// reception is still resolved word-parallel across lanes.
    fn run_generic(&mut self, mut live: u64, record_mode: RecordMode) {
        let dual = &self.dual;
        let lanes = &mut self.lanes;
        let shared = &mut self.shared;
        let n = dual.len();
        let horizon = self.config.max_rounds();
        let collision_detection = self.config.collision_detection();
        let records_collisions = record_mode.records_collisions();

        // lint: hot-path
        for round in Round::range(horizon) {
            // 1. Every live lane's processes pick actions with their private
            //    coins; transmit decisions land in the shared lane masks.
            shared.transmit[..n].fill(0);
            let mut mask = live;
            while mask != 0 {
                let lane_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let bit = 1u64 << lane_idx;
                let lane = &mut lanes[lane_idx];
                lane.actions.clear();
                for u in 0..n {
                    let action = lane.processes[u].on_round(round, &mut lane.node_rngs[u]);
                    if action.is_transmit() {
                        shared.transmit[u] |= bit;
                        lane.metrics.transmissions += 1;
                    }
                    lane.actions.push(action);
                }
            }

            // 2. Each lane's adversary fixes its dynamic edges.
            let mut mask = live;
            while mask != 0 {
                let lane_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                decide_lane_edges(dual, shared, &mut lanes[lane_idx], round);
            }

            // 3. Word-parallel reception across all lanes.
            fold_reception(dual, shared, lanes, live);

            // 4. Feedback, metrics, and stop observation per (node, lane).
            //    Lane streams are private and a round's observations commute,
            //    so interleaving lanes within a node preserves scalar
            //    behaviour exactly.
            let mut round_collisions = [0usize; MAX_LANES];
            for u in 0..n {
                let tu = shared.transmit[u];
                let ge1 = shared.ge1[u];
                let ge2 = shared.ge2[u];
                let mut mask = live;
                while mask != 0 {
                    let lane_idx = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let bit = 1u64 << lane_idx;
                    let lane = &mut lanes[lane_idx];
                    let feedback = if tu & bit != 0 {
                        Feedback::Transmitted
                    } else if ge2 & bit != 0 {
                        lane.metrics.collisions += 1;
                        round_collisions[lane_idx] += 1;
                        if collision_detection {
                            Feedback::Collision
                        } else {
                            Feedback::Silence
                        }
                    } else if ge1 & bit != 0 {
                        let sender = shared.senders[u * MAX_LANES + lane_idx] as usize;
                        let message = lane.actions[sender]
                            .message()
                            // lint: allow(D4) -- a set ge1 bit is only written
                            // from this lane's transmit mask two steps above
                            .expect("a set reception bit implies a message")
                            // lint: allow(D3) -- feedback owns its message; a
                            // broadcast message is a small copyable token
                            .clone();
                        lane.metrics.deliveries += 1;
                        lane.tracker.observe_one(
                            NodeId::new(u),
                            NodeId::new(sender),
                            message.kind(),
                        );
                        Feedback::Received(message)
                    } else {
                        lane.metrics.idle_listens += 1;
                        Feedback::Silence
                    };
                    lane.processes[u].on_feedback(round, &feedback, &mut lane.node_rngs[u]);
                }
            }

            // 5. Record, evaluate stops, retire finished lanes.
            finish_round(
                lanes,
                &mut live,
                round,
                &round_collisions,
                records_collisions,
            );
            if live == 0 {
                break;
            }
        }
        // lint: end-hot-path
    }

    /// The fixed-rate kernel: transmit decisions for 8 interleaved ChaCha8
    /// streams per block batch, no process objects, metrics derived from the
    /// lane-mask algebra. Only sound because [`KernelPlan::probe`] verified
    /// every process follows the [`BatchProfile::FixedRate`] contract.
    fn run_kernel(&mut self, mut live: u64, record_mode: RecordMode) {
        let dual = &self.dual;
        let lanes = &mut self.lanes;
        let shared = &mut self.shared;
        let ks = &mut self.kscratch;
        let Some(plan) = self.kernel.as_ref() else {
            return; // unreachable: callers check has_kernel first
        };
        let n = dual.len();
        let horizon = self.config.max_rounds();
        let records_collisions = record_mode.records_collisions();
        let mut out = [[0u32; STREAMS]; 16];

        // lint: hot-path
        for round in Round::range(horizon) {
            let r = round.index();
            let j = r % STREAMS;
            if j == 0 {
                // Refill the 8-round transmit buffer: one interleaved block
                // batch per (coin node, live 8-lane chunk).
                ks.t_buf.fill(0);
                let block = (r / STREAMS) as u64;
                for (ci, &(node, threshold)) in plan.coin.iter().enumerate() {
                    let node = node as usize;
                    for chunk in 0..(MAX_LANES / STREAMS) {
                        if live >> (chunk * STREAMS) & 0xff == 0 {
                            continue;
                        }
                        let base = ci * MAX_LANES + chunk * STREAMS;
                        chacha8_blocks(&ks.keys[base..base + STREAMS], block, &mut out);
                        for step in 0..STREAMS {
                            let lo = &out[2 * step];
                            let hi = &out[2 * step + 1];
                            let mut bits = 0u64;
                            for i in 0..STREAMS {
                                let x = lo[i] as u64 | (hi[i] as u64) << 32;
                                bits |= u64::from((x >> 11) < threshold) << i;
                            }
                            ks.t_buf[step * n + node] |= bits << (chunk * STREAMS);
                        }
                    }
                }
            }

            // 1. Transmit lane masks for this round, from the buffer.
            shared.transmit[..n].fill(0);
            let mut round_tx = [0usize; MAX_LANES];
            for &(node, _) in &plan.coin {
                let node = node as usize;
                let m = ks.t_buf[j * n + node] & live;
                if m != 0 {
                    shared.transmit[node] = m;
                    let mut bits = m;
                    while bits != 0 {
                        round_tx[bits.trailing_zeros() as usize] += 1;
                        bits &= bits - 1;
                    }
                }
            }
            if !plan.always.is_empty() {
                for &node in &plan.always {
                    shared.transmit[node as usize] = live;
                }
                let mut bits = live;
                while bits != 0 {
                    round_tx[bits.trailing_zeros() as usize] += plan.always.len();
                    bits &= bits - 1;
                }
            }

            // 2. Each lane's adversary fixes its dynamic edges.
            let mut mask = live;
            while mask != 0 {
                let lane_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                decide_lane_edges(dual, shared, &mut lanes[lane_idx], round);
            }

            // 3. Word-parallel reception across all lanes.
            fold_reception(dual, shared, lanes, live);

            // 4. Metrics from the lane-mask algebra: deliveries are sparse
            //    (and feed the stop trackers), collisions accumulate in a
            //    vertical popcount, idle listens follow by identity —
            //    listeners partition into zero/one/collision exactly.
            let mut round_deliveries = [0usize; MAX_LANES];
            let mut round_collisions = [0usize; MAX_LANES];
            let mut planes = [0u64; 4];
            let mut pending_adds = 0usize;
            for u in 0..n {
                let listening = live & !shared.transmit[u];
                let collided = shared.ge2[u] & listening;
                if collided != 0 {
                    counter_add(&mut planes, collided);
                    pending_adds += 1;
                    if pending_adds == 15 {
                        counter_flush(&mut planes, &mut round_collisions);
                        pending_adds = 0;
                    }
                }
                let mut ones = shared.ge1[u] & !shared.ge2[u] & listening;
                while ones != 0 {
                    let lane_idx = ones.trailing_zeros() as usize;
                    ones &= ones - 1;
                    round_deliveries[lane_idx] += 1;
                    let sender = shared.senders[u * MAX_LANES + lane_idx] as usize;
                    lanes[lane_idx].tracker.observe_one(
                        NodeId::new(u),
                        NodeId::new(sender),
                        plan.kinds[sender],
                    );
                }
            }
            if pending_adds > 0 {
                counter_flush(&mut planes, &mut round_collisions);
            }
            let mut mask = live;
            while mask != 0 {
                let lane_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let metrics = &mut lanes[lane_idx].metrics;
                metrics.transmissions += round_tx[lane_idx];
                metrics.deliveries += round_deliveries[lane_idx];
                metrics.collisions += round_collisions[lane_idx];
                metrics.idle_listens += n
                    - round_tx[lane_idx]
                    - round_deliveries[lane_idx]
                    - round_collisions[lane_idx];
            }

            // 5. Record, evaluate stops, retire finished lanes.
            finish_round(
                lanes,
                &mut live,
                round,
                &round_collisions,
                records_collisions,
            );
            if live == 0 {
                break;
            }
        }
        // lint: end-hot-path
    }
}

impl std::fmt::Debug for BatchExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchExecutor")
            .field("n", &self.dual.len())
            .field("config", &self.config)
            .field("kernel", &self.kernel.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkDecision, StaticLinks};
    use crate::message::Message;
    use crate::process::Role;
    use crate::sampling;
    use crate::TrialExecutor;
    use dradio_graphs::topology;
    use rand::RngCore;

    const DATA: MessageKind = MessageKind::new(1);

    /// Decay-style flooding: informed nodes transmit their message with a
    /// fixed probability; uninformed nodes adopt the first message they hear.
    /// Deliberately `BatchProfile::Generic` (stateful feedback).
    struct EchoRelay {
        msg: Option<Message>,
        rate: f64,
    }

    impl Process for EchoRelay {
        fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
            match &self.msg {
                Some(m) if sampling::bernoulli(rng, self.rate) => Action::Transmit(m.clone()),
                _ => Action::Listen,
            }
        }
        fn on_feedback(&mut self, _round: Round, feedback: &Feedback, _rng: &mut dyn RngCore) {
            if self.msg.is_none() {
                if let Feedback::Received(m) = feedback {
                    self.msg = Some(m.clone());
                }
            }
        }
    }

    fn echo_factory(rate: f64) -> ProcessFactory {
        Arc::new(move |ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Source).then(|| Message::plain(ctx.id, DATA, 7));
            Box::new(EchoRelay { msg, rate }) as Box<dyn Process>
        })
    }

    /// Fixed-rate beacon that opts into the word-parallel kernel.
    struct RateBeacon {
        msg: Option<Message>,
        rate: f64,
    }

    impl Process for RateBeacon {
        fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
            match &self.msg {
                Some(m) if sampling::bernoulli(rng, self.rate) => Action::Transmit(m.clone()),
                _ => Action::Listen,
            }
        }
        fn batch_profile(&self) -> BatchProfile {
            BatchProfile::FixedRate {
                rate: if self.msg.is_some() { self.rate } else { 0.0 },
                message: self.msg.clone(),
            }
        }
    }

    /// Source transmits at `source_rate`; every relay chatters its own DATA
    /// message at `relay_rate` (0 silences relays).
    fn rate_factory(source_rate: f64, relay_rate: f64) -> ProcessFactory {
        Arc::new(move |ctx: &ProcessContext| {
            let (msg, rate) = if ctx.role == Role::Source {
                (Some(Message::plain(ctx.id, DATA, 7)), source_rate)
            } else if relay_rate > 0.0 {
                (
                    Some(Message::plain(ctx.id, DATA, ctx.id.index() as u64)),
                    relay_rate,
                )
            } else {
                (None, 0.0)
            };
            Box::new(RateBeacon { msg, rate }) as Box<dyn Process>
        })
    }

    /// Oblivious dynamic adversary: each genuine `G' \ G` edge flips on with
    /// probability 1/2; also proposes a duplicate and (when one exists) a
    /// static `G` edge every round to exercise dedup and rejection.
    struct FlakyLinks {
        dynamic: Vec<Edge>,
        bogus: Option<Edge>,
    }

    impl FlakyLinks {
        fn new() -> Self {
            FlakyLinks {
                dynamic: Vec::new(),
                bogus: None,
            }
        }
    }

    impl LinkProcess for FlakyLinks {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }
        fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
            self.dynamic = setup.dual.dynamic_edges();
            self.bogus = NodeId::all(setup.dual.len()).find_map(|u| {
                setup
                    .dual
                    .g()
                    .neighbors(u)
                    .first()
                    .map(|&v| Edge::new(u, v))
            });
        }
        fn decide(&mut self, _view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> LinkDecision {
            let mut chosen = Vec::new();
            for &edge in &self.dynamic {
                if sampling::bernoulli(rng, 0.5) {
                    chosen.push(edge);
                }
            }
            if let Some(&first) = chosen.first() {
                chosen.push(first); // duplicate: must dedup, not double-count
            }
            if let Some(bogus) = self.bogus {
                chosen.push(bogus); // static edge: must be rejected
            }
            LinkDecision::from_edges(chosen)
        }
        fn reset(&mut self) -> bool {
            true
        }
    }

    fn static_link() -> LinkFactory {
        Arc::new(|| Box::new(StaticLinks::none()))
    }

    fn flaky_link() -> LinkFactory {
        Arc::new(|| Box::new(FlakyLinks::new()))
    }

    fn assert_groups_match_scalar(
        batch: &mut BatchExecutor,
        scalar: &mut TrialExecutor,
        groups: &[&[u64]],
        mode: RecordMode,
    ) {
        for seeds in groups {
            let outcomes = batch
                .execute_group(seeds, mode)
                .expect("group is batchable");
            assert_eq!(outcomes.len(), seeds.len());
            for (k, outcome) in outcomes.iter().enumerate() {
                let expected = scalar.execute(seeds[k], mode);
                assert_eq!(
                    *outcome, expected,
                    "seed {} (lane {k}) diverged under {mode}",
                    seeds[k]
                );
            }
        }
    }

    #[test]
    fn interleaved_chacha_is_bit_exact() {
        let keys: Vec<[u32; 8]> = (0..STREAMS as u64)
            .map(|i| key_from_u64(derive_stream_seed(0xDEAD_BEEF, i)))
            .collect();
        let mut out = [[0u32; STREAMS]; 16];
        for counter in 0..3u64 {
            chacha8_blocks(&keys, counter, &mut out);
            for (i, _) in keys.iter().enumerate() {
                let mut rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(0xDEAD_BEEF, i as u64));
                // Skip to this block's words.
                for _ in 0..counter * 16 {
                    rng.next_u32();
                }
                for (w, word) in out.iter().enumerate() {
                    assert_eq!(
                        rng.next_u32(),
                        word[i],
                        "stream {i} counter {counter} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn bernoulli_threshold_matches_scalar_compare() {
        let scale = 1.0 / 9_007_199_254_740_992.0;
        let rates = [
            0.5,
            0.1,
            1.0 / 3.0,
            0.25,
            1e-12,
            1.0 - 1e-12,
            123.0 / 9_007_199_254_740_992.0,
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..4096 {
            let x = rng.next_u64();
            for &rate in &rates {
                let scalar = ((x >> 11) as f64 * scale) < rate;
                let sliced = (x >> 11) < bernoulli_threshold(rate);
                assert_eq!(scalar, sliced, "x {x} rate {rate}");
            }
        }
        // Boundary cases around an exact k/2^53 rate.
        for k in [1u64, 2, 123, (1 << 53) - 1] {
            let rate = k as f64 * scale;
            for probe in [k.saturating_sub(1), k, k + 1] {
                let x = probe << 11;
                let scalar = ((x >> 11) as f64 * scale) < rate;
                let sliced = (x >> 11) < bernoulli_threshold(rate);
                assert_eq!(scalar, sliced, "k {k} probe {probe}");
            }
        }
    }

    #[test]
    fn generic_path_matches_scalar_per_lane() {
        let mut batch = BatchExecutor::new(
            topology::star(6).unwrap(),
            echo_factory(0.5),
            Assignment::global(6, NodeId::new(0)),
            static_link(),
            StopCondition::global_broadcast(DATA, NodeId::new(0)),
            SimConfig::default().with_max_rounds(50),
        )
        .unwrap();
        assert!(!batch.has_kernel());
        let mut scalar = TrialExecutor::new(
            topology::star(6).unwrap(),
            echo_factory(0.5),
            Assignment::global(6, NodeId::new(0)),
            static_link(),
            StopCondition::global_broadcast(DATA, NodeId::new(0)),
            SimConfig::default().with_max_rounds(50),
        )
        .unwrap();
        let all: Vec<u64> = (0..64).collect();
        let ragged: Vec<u64> = (100..117).collect();
        for mode in [RecordMode::None, RecordMode::CollisionsOnly] {
            assert_groups_match_scalar(
                &mut batch,
                &mut scalar,
                &[&all, &ragged, &[7], &[1, 2, 3]],
                mode,
            );
        }
    }

    #[test]
    fn generic_path_matches_scalar_with_dynamic_adversary() {
        let mut batch = BatchExecutor::new(
            topology::dual_clique(8).unwrap(),
            echo_factory(0.4),
            Assignment::global(8, NodeId::new(0)),
            flaky_link(),
            StopCondition::global_broadcast(DATA, NodeId::new(0)),
            SimConfig::default().with_max_rounds(60),
        )
        .unwrap();
        let mut scalar = TrialExecutor::new(
            topology::dual_clique(8).unwrap(),
            echo_factory(0.4),
            Assignment::global(8, NodeId::new(0)),
            flaky_link(),
            StopCondition::global_broadcast(DATA, NodeId::new(0)),
            SimConfig::default().with_max_rounds(60),
        )
        .unwrap();
        let seeds: Vec<u64> = (0..40).collect();
        assert_groups_match_scalar(
            &mut batch,
            &mut scalar,
            &[&seeds],
            RecordMode::CollisionsOnly,
        );
    }

    #[test]
    fn kernel_matches_scalar_and_generic() {
        let build_batch = || {
            BatchExecutor::new(
                topology::dual_clique(8).unwrap(),
                rate_factory(0.7, 0.3),
                Assignment::global(8, NodeId::new(0)),
                flaky_link(),
                StopCondition::global_broadcast(DATA, NodeId::new(0)),
                SimConfig::default().with_max_rounds(40),
            )
            .unwrap()
        };
        let mut batch = build_batch();
        assert!(batch.has_kernel());
        let mut scalar = TrialExecutor::new(
            topology::dual_clique(8).unwrap(),
            rate_factory(0.7, 0.3),
            Assignment::global(8, NodeId::new(0)),
            flaky_link(),
            StopCondition::global_broadcast(DATA, NodeId::new(0)),
            SimConfig::default().with_max_rounds(40),
        )
        .unwrap();
        let all: Vec<u64> = (0..64).collect();
        let ragged: Vec<u64> = (200..223).collect();
        for mode in [RecordMode::None, RecordMode::CollisionsOnly] {
            assert_groups_match_scalar(&mut batch, &mut scalar, &[&all, &ragged, &[42]], mode);
        }
        // The forced-generic path agrees with the kernel lane for lane.
        let mut generic = build_batch();
        generic.set_force_generic(true);
        let fast = batch
            .execute_group(&ragged, RecordMode::CollisionsOnly)
            .unwrap();
        let slow = generic
            .execute_group(&ragged, RecordMode::CollisionsOnly)
            .unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn kernel_handles_always_and_silent_nodes() {
        // Two always-on transmitters collide forever on a clique: nothing
        // completes, every listener collides, and idle listens stay zero for
        // listeners — pinned against the scalar path.
        let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
            let rate = match ctx.id.index() {
                0 | 1 => 1.0,
                _ => 0.0,
            };
            let msg = (rate > 0.0).then(|| Message::plain(ctx.id, DATA, ctx.id.index() as u64));
            Box::new(RateBeacon { msg, rate }) as Box<dyn Process>
        });
        let mut batch = BatchExecutor::new(
            topology::star(5).unwrap(),
            Arc::clone(&factory),
            Assignment::relays(5),
            static_link(),
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(9),
        )
        .unwrap();
        assert!(batch.has_kernel());
        let mut scalar = TrialExecutor::new(
            topology::star(5).unwrap(),
            factory,
            Assignment::relays(5),
            static_link(),
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(9),
        )
        .unwrap();
        let seeds: Vec<u64> = (0..10).collect();
        assert_groups_match_scalar(
            &mut batch,
            &mut scalar,
            &[&seeds],
            RecordMode::CollisionsOnly,
        );
    }

    #[test]
    fn degenerate_stop_completes_before_any_round() {
        let stop = StopCondition::NodesReceivedKind {
            nodes: vec![],
            kind: DATA,
        };
        let mut batch = BatchExecutor::new(
            topology::star(4).unwrap(),
            rate_factory(0.5, 0.0),
            Assignment::global(4, NodeId::new(0)),
            static_link(),
            stop.clone(),
            SimConfig::default().with_max_rounds(10),
        )
        .unwrap();
        let mut scalar = TrialExecutor::new(
            topology::star(4).unwrap(),
            rate_factory(0.5, 0.0),
            Assignment::global(4, NodeId::new(0)),
            static_link(),
            stop,
            SimConfig::default().with_max_rounds(10),
        )
        .unwrap();
        let outcomes = batch.execute_group(&[3, 4], RecordMode::None).unwrap();
        for (k, outcome) in outcomes.iter().enumerate() {
            assert!(outcome.completed);
            assert_eq!(outcome.rounds_executed, 0);
            assert_eq!(outcome.completion_round, None);
            assert_eq!(*outcome, scalar.execute([3, 4][k], RecordMode::None));
        }
    }

    #[test]
    fn batch_refuses_what_it_cannot_replicate() {
        let mut batch = BatchExecutor::new(
            topology::star(4).unwrap(),
            echo_factory(0.5),
            Assignment::global(4, NodeId::new(0)),
            static_link(),
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(5),
        )
        .unwrap();
        let err = batch
            .execute_group(&[1], RecordMode::Full)
            .expect_err("full recording must be refused");
        assert!(matches!(err, SimError::UnsupportedBatch { .. }));
        let too_many: Vec<u64> = (0..65).collect();
        let err = batch
            .execute_group(&too_many, RecordMode::None)
            .expect_err("more than 64 lanes must be refused");
        assert!(matches!(err, SimError::UnsupportedBatch { .. }));
        assert_eq!(
            batch.execute_group(&[], RecordMode::None).unwrap(),
            Vec::new()
        );

        struct Adaptive;
        impl LinkProcess for Adaptive {
            fn class(&self) -> AdversaryClass {
                AdversaryClass::OnlineAdaptive
            }
            fn decide(
                &mut self,
                _view: &AdversaryView<'_>,
                _rng: &mut dyn RngCore,
            ) -> LinkDecision {
                LinkDecision::none()
            }
        }
        let err = BatchExecutor::new(
            topology::star(4).unwrap(),
            echo_factory(0.5),
            Assignment::global(4, NodeId::new(0)),
            Arc::new(|| Box::new(Adaptive) as Box<dyn LinkProcess>),
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(5),
        )
        .expect_err("adaptive adversaries must be refused at construction");
        assert!(matches!(err, SimError::UnsupportedBatch { .. }));
    }

    #[test]
    fn validation_mirrors_the_scalar_constructor() {
        let err = BatchExecutor::new(
            topology::line(3).unwrap(),
            echo_factory(0.5),
            Assignment::relays(2),
            static_link(),
            StopCondition::max_rounds(),
            SimConfig::default(),
        )
        .expect_err("size mismatch must be rejected");
        assert!(matches!(err, SimError::AssignmentSizeMismatch { .. }));
        let err = BatchExecutor::new(
            topology::line(3).unwrap(),
            echo_factory(0.5),
            Assignment::relays(3),
            static_link(),
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(0),
        )
        .expect_err("zero horizon must be rejected");
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }
}
