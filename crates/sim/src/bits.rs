//! Shared random bit strings.
//!
//! The paper's algorithms coordinate nodes by distributing *random bits
//! generated after the execution begins* (so the oblivious adversary cannot
//! have anticipated them): the global broadcast source appends
//! `Θ(log² n log log n)` bits to its message, and the geographic local
//! broadcast leaders disseminate seeds of `Θ(log³ n (log log n)²)` bits.
//!
//! [`BitString`] is an immutable, cheaply cloneable (reference counted) bit
//! sequence; [`BitReader`] is a cursor that consumes fixed-width chunks, which
//! is exactly how the permuted decay subroutine uses its permutation bits.

use std::fmt;
use std::sync::Arc;

use rand::RngCore;

/// An immutable string of bits, cheap to clone and to embed in messages.
///
/// # Example
///
/// ```
/// use dradio_sim::BitString;
/// let s = BitString::from_bools([true, false, true, true]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.bit(0), Some(true));
/// assert_eq!(s.bit(1), Some(false));
/// assert_eq!(s.bit(9), None);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    words: Arc<Vec<u64>>,
    len: usize,
}

impl BitString {
    /// The empty bit string.
    pub fn empty() -> Self {
        BitString::default()
    }

    /// Generates `len` bits of uniform and independent randomness from `rng`.
    pub fn random(len: usize, rng: &mut dyn RngCore) -> Self {
        let word_count = len.div_ceil(64);
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(rng.next_u64());
        }
        // Zero the unused tail bits so equality is structural.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                let keep = len % 64;
                *last &= (1u64 << keep) - 1;
            }
        }
        BitString {
            words: Arc::new(words),
            len,
        }
    }

    /// Builds a bit string from booleans (index 0 first).
    pub fn from_bools<I: IntoIterator<Item = bool>>(bools: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        for b in bools {
            if len.is_multiple_of(64) {
                words.push(0u64);
            }
            if b {
                // lint: allow(D4) -- a word is pushed above whenever len crosses a
                // 64-bit boundary, so last_mut() always sees at least one word
                let last = words.last_mut().expect("word pushed above");
                *last |= 1u64 << (len % 64);
            }
            len += 1;
        }
        BitString {
            words: Arc::new(words),
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the string has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`, or `None` if out of range.
    pub fn bit(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some(self.words[i / 64] >> (i % 64) & 1 == 1)
    }

    /// Reads `width ≤ 64` bits starting at `start` as an unsigned integer
    /// (bit `start` is the least significant). Returns `None` if the range is
    /// out of bounds or wider than 64 bits.
    pub fn value(&self, start: usize, width: usize) -> Option<u64> {
        if width == 0 || width > 64 || start + width > self.len {
            return None;
        }
        let mut out = 0u64;
        for offset in 0..width {
            // lint: allow(D4) -- start + width <= len was checked at function entry
            if self.bit(start + offset).expect("range checked") {
                out |= 1u64 << offset;
            }
        }
        Some(out)
    }

    /// Creates a cursor that consumes the string from the beginning.
    pub fn reader(&self) -> BitReader {
        BitReader {
            bits: self.clone(),
            pos: 0,
        }
    }

    /// Creates a cursor positioned at bit `start`.
    pub fn reader_at(&self, start: usize) -> BitReader {
        BitReader {
            bits: self.clone(),
            pos: start.min(self.len),
        }
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(len={}", self.len)?;
        if self.len <= 32 {
            write!(f, ", bits=")?;
            for i in 0..self.len {
                write!(
                    f,
                    "{}",
                    // lint: allow(D4) -- i ranges over 0..self.len, always in bounds
                    if self.bit(i).expect("in range") {
                        '1'
                    } else {
                        '0'
                    }
                )?;
            }
        }
        write!(f, ")")
    }
}

/// A cursor over a [`BitString`] that consumes fixed-width chunks.
///
/// # Example
///
/// ```
/// use dradio_sim::BitString;
/// let s = BitString::from_bools([true, true, false, true]);
/// let mut r = s.reader();
/// assert_eq!(r.take(2), Some(0b11));
/// assert_eq!(r.take(2), Some(0b10)); // bits 2 (0) and 3 (1), LSB first
/// assert_eq!(r.take(1), None);       // exhausted
/// ```
#[derive(Debug, Clone)]
pub struct BitReader {
    bits: BitString,
    pos: usize,
}

impl BitReader {
    /// Consumes `width` bits and returns them as an unsigned integer, or
    /// `None` if fewer than `width` bits remain (the cursor is not advanced
    /// in that case).
    pub fn take(&mut self, width: usize) -> Option<u64> {
        let value = self.bits.value(self.pos, width)?;
        self.pos += width;
        Some(value)
    }

    /// Consumes `width` bits and reduces them modulo `modulus`, or `None` if
    /// exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    pub fn take_mod(&mut self, width: usize, modulus: u64) -> Option<u64> {
        assert!(modulus > 0, "modulus must be positive");
        self.take(width).map(|v| v % modulus)
    }

    /// Number of unread bits.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_string() {
        let s = BitString::empty();
        assert!(s.is_empty());
        assert_eq!(s.bit(0), None);
        assert_eq!(s.value(0, 1), None);
        assert_eq!(s.reader().remaining(), 0);
    }

    #[test]
    fn from_bools_round_trip() {
        let pattern = [true, false, false, true, true, false, true];
        let s = BitString::from_bools(pattern);
        assert_eq!(s.len(), 7);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.bit(i), Some(b));
        }
    }

    #[test]
    fn value_reads_lsb_first() {
        let s = BitString::from_bools([true, false, true]); // value 0b101
        assert_eq!(s.value(0, 3), Some(5));
        assert_eq!(s.value(1, 2), Some(2));
        assert_eq!(s.value(0, 4), None);
        assert_eq!(s.value(0, 0), None);
    }

    #[test]
    fn value_rejects_width_over_64() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = BitString::random(128, &mut rng);
        assert_eq!(s.value(0, 65), None);
        assert!(s.value(0, 64).is_some());
    }

    #[test]
    fn random_has_requested_length_and_is_deterministic() {
        let a = BitString::random(1000, &mut ChaCha8Rng::seed_from_u64(3));
        let b = BitString::random(1000, &mut ChaCha8Rng::seed_from_u64(3));
        let c = BitString::random(1000, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let s = BitString::random(10_000, &mut ChaCha8Rng::seed_from_u64(9));
        let ones = (0..s.len()).filter(|&i| s.bit(i) == Some(true)).count();
        assert!(ones > 4_500 && ones < 5_500, "ones = {ones}");
    }

    #[test]
    fn reader_consumes_sequentially() {
        let s = BitString::from_bools([true, true, false, false, true, false]);
        let mut r = s.reader();
        assert_eq!(r.take(3), Some(0b011));
        assert_eq!(r.position(), 3);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take(3), Some(0b010));
        assert_eq!(r.take(1), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_at_offset() {
        let s = BitString::from_bools([true, false, true, true]);
        let mut r = s.reader_at(2);
        assert_eq!(r.take(2), Some(0b11));
        let mut past_end = s.reader_at(100);
        assert_eq!(past_end.take(1), None);
    }

    #[test]
    fn take_mod_reduces() {
        let s = BitString::from_bools([true; 16]);
        let mut r = s.reader();
        let v = r.take_mod(8, 10).unwrap();
        assert!(v < 10);
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn take_mod_rejects_zero_modulus() {
        let s = BitString::from_bools([true; 8]);
        let _ = s.reader().take_mod(4, 0);
    }

    #[test]
    fn clone_is_cheap_and_shares_storage() {
        let s = BitString::random(1 << 16, &mut ChaCha8Rng::seed_from_u64(1));
        let t = s.clone();
        assert_eq!(s, t);
    }

    #[test]
    fn debug_shows_small_strings() {
        let s = BitString::from_bools([true, false]);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("10"));
        assert!(dbg.contains("len=2"));
    }

    #[test]
    fn tail_bits_are_zeroed_for_equality() {
        // Two random strings of the same content must be equal regardless of
        // what garbage the generator produced past the end.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = BitString::random(70, &mut rng);
        let copy = BitString::from_bools((0..70).map(|i| s.bit(i).unwrap()));
        assert_eq!(s, copy);
    }
}
