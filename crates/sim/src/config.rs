//! Simulation configuration.

use crate::error::SimError;
use crate::recorder::RecordMode;
use crate::Result;

/// Configuration of a single execution.
///
/// # Example
///
/// ```
/// use dradio_sim::{RecordMode, SimConfig};
/// let cfg = SimConfig::default().with_seed(42).with_max_rounds(5_000);
/// assert_eq!(cfg.seed(), 42);
/// assert_eq!(cfg.max_rounds(), 5_000);
/// assert!(!cfg.collision_detection());
/// assert_eq!(cfg.record_mode(), RecordMode::Full);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    max_rounds: usize,
    seed: u64,
    collision_detection: bool,
    record_mode: RecordMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_rounds: 100_000,
            seed: 0,
            collision_detection: false,
            record_mode: RecordMode::Full,
        }
    }
}

impl SimConfig {
    /// Creates the default configuration (100 000 round horizon, seed 0, no
    /// collision detection).
    pub fn new() -> Self {
        SimConfig::default()
    }

    /// Sets the maximum number of rounds to execute.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the master random seed. Everything in the execution — node coins,
    /// adversary coins — is derived deterministically from this seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables collision detection (a diagnostic mode: listening nodes are
    /// told [`Feedback::Collision`](crate::Feedback::Collision) instead of
    /// silence when two or more neighbors transmit). The paper's model has no
    /// collision detection, so experiments leave this off.
    pub fn with_collision_detection(mut self, enabled: bool) -> Self {
        self.collision_detection = enabled;
        self
    }

    /// Selects how much of the execution the engine retains (default
    /// [`RecordMode::Full`]). Executions against adaptive adversary classes
    /// auto-promote to `Full` regardless — see
    /// [`RecordMode::effective_for`].
    pub fn with_record_mode(mut self, record_mode: RecordMode) -> Self {
        self.record_mode = record_mode;
        self
    }

    /// The round horizon.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether collision detection is enabled.
    pub fn collision_detection(&self) -> bool {
        self.collision_detection
    }

    /// The requested record mode.
    pub fn record_mode(&self) -> RecordMode {
        self.record_mode
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the horizon is zero.
    pub fn validate(&self) -> Result<()> {
        if self.max_rounds == 0 {
            return Err(SimError::InvalidConfig {
                reason: "max_rounds must be at least 1".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_values() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.max_rounds(), 100_000);
        assert_eq!(cfg.seed(), 0);
        assert!(!cfg.collision_detection());
        assert!(cfg.validate().is_ok());
        assert_eq!(SimConfig::new(), cfg);
    }

    #[test]
    fn builders_set_fields() {
        let cfg = SimConfig::default()
            .with_max_rounds(10)
            .with_seed(99)
            .with_collision_detection(true)
            .with_record_mode(RecordMode::None);
        assert_eq!(cfg.max_rounds(), 10);
        assert_eq!(cfg.seed(), 99);
        assert!(cfg.collision_detection());
        assert_eq!(cfg.record_mode(), RecordMode::None);
    }

    #[test]
    fn zero_horizon_is_rejected() {
        let cfg = SimConfig::default().with_max_rounds(0);
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig { .. })
        ));
    }
}
