//! The round-by-round execution engine.

use dradio_graphs::{DualGraph, Edge, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::action::{Action, Feedback};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::history::{Delivery, History, RoundRecord};
use crate::link::{AdversaryClass, AdversarySetup, AdversaryView, LinkProcess};
use crate::metrics::Metrics;
use crate::process::{Assignment, Process, ProcessContext, ProcessFactory};
use crate::recorder::{RecordMode, Recorder};
use crate::round::Round;
use crate::stop::{StopCondition, StopTracker};
use crate::Result;

/// The result of running an execution.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// Whether the stop condition was satisfied before the horizon.
    pub completed: bool,
    /// Number of rounds actually executed.
    pub rounds_executed: usize,
    /// The round in which the stop condition became satisfied, if it did.
    pub completion_round: Option<Round>,
    /// Per-round history of the execution. Complete when [`record_mode`]
    /// is [`RecordMode::Full`]; empty otherwise.
    ///
    /// [`record_mode`]: ExecutionOutcome::record_mode
    pub history: History,
    /// Aggregate counters (identical under every record mode).
    pub metrics: Metrics,
    /// The record mode the execution effectively ran with, after the
    /// adaptive-adversary promotion rule (see [`RecordMode::effective_for`]).
    pub record_mode: RecordMode,
    /// Collisions per executed round; retained under [`RecordMode::Full`]
    /// and [`RecordMode::CollisionsOnly`], empty under [`RecordMode::None`].
    pub collisions_per_round: Vec<usize>,
}

impl ExecutionOutcome {
    /// Rounds until completion if the condition was met, otherwise the number
    /// of rounds executed (the horizon). Experiments use this as the measured
    /// cost, treating non-completion as a censored observation at the
    /// horizon.
    pub fn cost(&self) -> usize {
        match self.completion_round {
            Some(r) => r.index() + 1,
            None => self.rounds_executed,
        }
    }
}

/// Derives a per-stream seed from the master seed (splitmix64 finalizer, so
/// adjacent stream indices get uncorrelated streams). The engine uses it for
/// per-node and adversary random streams; the scenario runner reuses it to
/// derive independent per-trial master seeds.
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A configured dual-graph radio network simulation.
///
/// See the [crate documentation](crate) for the model and an end-to-end
/// example.
pub struct Simulator {
    dual: DualGraph,
    processes: Vec<Box<dyn Process>>,
    link: Box<dyn LinkProcess>,
    node_rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    config: SimConfig,
    factory: ProcessFactory,
    assignment: Assignment,
}

impl Simulator {
    /// Builds a simulation: instantiates one process per node from `factory`
    /// and derives deterministic per-node random streams from the master
    /// seed.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyNetwork`] if the network has no nodes.
    /// * [`SimError::AssignmentSizeMismatch`] if `assignment` covers a
    ///   different number of nodes.
    /// * [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(
        dual: DualGraph,
        factory: ProcessFactory,
        assignment: Assignment,
        link: Box<dyn LinkProcess>,
        config: SimConfig,
    ) -> Result<Self> {
        config.validate()?;
        let n = dual.len();
        if n == 0 {
            return Err(SimError::EmptyNetwork);
        }
        if assignment.len() != n {
            return Err(SimError::AssignmentSizeMismatch {
                network: n,
                assignment: assignment.len(),
            });
        }
        let max_degree = dual.max_degree();
        let mut processes = Vec::with_capacity(n);
        let mut node_rngs = Vec::with_capacity(n);
        for u in NodeId::all(n) {
            let ctx = ProcessContext::new(u, n, max_degree, assignment.role(u));
            processes.push(factory(&ctx));
            node_rngs.push(ChaCha8Rng::seed_from_u64(derive_stream_seed(
                config.seed(),
                u.index() as u64,
            )));
        }
        let adversary_rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(config.seed(), u64::MAX));
        Ok(Simulator {
            dual,
            processes,
            link,
            node_rngs,
            adversary_rng,
            config,
            factory,
            assignment,
        })
    }

    /// The network being simulated.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the execution until `stop` is satisfied or the round horizon is
    /// reached, consuming the simulator.
    ///
    /// How much of the execution is retained is governed by the
    /// configuration's [`RecordMode`] (default [`RecordMode::Full`]);
    /// behaviour and [`Metrics`] are identical under every mode.
    ///
    /// # Panics
    ///
    /// Panics if `stop` references nodes outside the network (a programming
    /// error in the experiment setup, not a runtime condition).
    pub fn run(mut self, stop: StopCondition) -> ExecutionOutcome {
        if let Some(max_index) = stop.max_node_index() {
            assert!(
                max_index < self.dual.len(),
                "stop condition references node {max_index} but the network has {} nodes",
                self.dual.len()
            );
        }

        let n = self.dual.len();
        let horizon = self.config.max_rounds();
        let class = self.link.class();
        let adaptive = class != AdversaryClass::Oblivious;
        let offline = class == AdversaryClass::OfflineAdaptive;
        let mut recorder = Recorder::new(self.config.record_mode(), class, n);
        let mut metrics = Metrics::default();
        let mut tracker = StopTracker::new(stop, n);

        // Start-of-execution hooks.
        {
            let setup = AdversarySetup {
                dual: &self.dual,
                factory: &self.factory,
                assignment: &self.assignment,
                horizon,
            };
            self.link.on_start(&setup, &mut self.adversary_rng);
        }
        for (i, process) in self.processes.iter_mut().enumerate() {
            process.on_start(&mut self.node_rngs[i]);
        }

        let mut completion_round = None;
        let mut rounds_executed = 0usize;

        if tracker.is_done() {
            // Degenerate conditions (e.g. empty receiver set) are complete
            // before any round executes.
            let record_mode = recorder.mode();
            let (history, collisions_per_round) = recorder.finish();
            return ExecutionOutcome {
                completed: true,
                rounds_executed: 0,
                completion_round: None,
                history,
                metrics,
                record_mode,
                collisions_per_round,
            };
        }

        // All per-round working memory lives in the scratch and is cleared,
        // never reallocated, between rounds. Networks with no dynamic edges
        // (`G = G'`) skip the dynamic-adjacency rows entirely.
        let mut scratch = RoundScratch::new(n, self.dual.g().row_words(), !self.dual.is_static());

        for round in Round::range(horizon) {
            rounds_executed += 1;

            // 1. Expected behaviour (visible to adaptive adversaries) must be
            //    captured before any round-r coin is flipped.
            if adaptive {
                scratch.transmit_probs.clear();
                scratch
                    .transmit_probs
                    .extend(self.processes.iter().map(|p| p.transmit_probability(round)));
            }

            // 2. Processes pick their actions using their private coins.
            scratch.actions.clear();
            for (i, p) in self.processes.iter_mut().enumerate() {
                scratch
                    .actions
                    .push(p.on_round(round, &mut self.node_rngs[i]));
            }

            // 3. The link process fixes the dynamic edges, seeing only what
            //    its class entitles it to (the recorder's history is complete
            //    here: adaptive classes auto-promote to full recording).
            let decision = {
                let view = AdversaryView::new(
                    round,
                    n,
                    adaptive.then(|| recorder.history()),
                    adaptive.then_some(scratch.transmit_probs.as_slice()),
                    offline.then_some(scratch.actions.as_slice()),
                );
                self.link.decide(&view, &mut self.adversary_rng)
            };

            // Filter the decision down to genuine dynamic edges. The dynamic
            // adjacency bit rows double as an O(1) duplicate check.
            scratch.clear_dynamic();
            scratch.active_edges.clear();
            for edge in decision.edges() {
                let (u, v) = edge.endpoints();
                let is_dynamic =
                    self.dual.g_prime().has_edge(u, v) && !self.dual.g().has_edge(u, v);
                if !is_dynamic {
                    metrics.rejected_link_edges += 1;
                } else if !scratch.dynamic_bit(u, v) {
                    scratch.set_dynamic(u, v);
                    scratch.active_edges.push(*edge);
                }
            }

            // 4. Reception under the collision rule, from the packed
            //    transmitter bitset.
            scratch.transmitters.clear();
            scratch.transmitter_bits.iter_mut().for_each(|w| *w = 0);
            for (i, action) in scratch.actions.iter().enumerate() {
                if action.is_transmit() {
                    scratch.transmitter_bits[i / 64] |= 1u64 << (i % 64);
                    scratch.transmitters.push(NodeId::new(i));
                }
            }
            let transmitter_count = scratch.transmitters.len();
            metrics.transmissions += transmitter_count;

            scratch.feedbacks.clear();
            // Deliveries are materialized only under full recording; feedback
            // and stop evaluation never need the allocation.
            let mut deliveries: Vec<Delivery> = Vec::new();
            let mut round_collisions = 0usize;

            if transmitter_count == 0 {
                // Nobody transmitted: every node listens into silence.
                metrics.idle_listens += n;
                for _ in 0..n {
                    scratch.feedbacks.push(Feedback::Silence);
                }
            } else {
                let g = self.dual.g();
                let words = g.row_words();
                let use_dynamic = !scratch.active_edges.is_empty();
                // Below this transmitter count, probing each transmitter with
                // O(1) bit queries beats scanning the whole adjacency row.
                let probe_transmitters = transmitter_count <= words;
                for u in NodeId::all(n) {
                    let u_idx = u.index();
                    if scratch.transmitter_bits[u_idx / 64] >> (u_idx % 64) & 1 == 1 {
                        scratch.feedbacks.push(Feedback::Transmitted);
                        continue;
                    }
                    // Count transmitting neighbors, capped at 2 (the collision
                    // rule only distinguishes 0 / 1 / "several"), picking the
                    // cheapest of three equivalent strategies per listener:
                    // walk the adjacency list testing transmitter bits (low
                    // degree), probe each transmitter with O(1) edge queries
                    // (few transmitters), or intersect the packed adjacency
                    // row with the transmitter bitset (dense rounds).
                    let mut count = 0usize;
                    let mut sender = 0usize;
                    let degree = g.degree(u);
                    if !use_dynamic && degree <= transmitter_count && degree <= words * 2 {
                        for &v in g.neighbors(u) {
                            let v_idx = v.index();
                            if scratch.transmitter_bits[v_idx / 64] >> (v_idx % 64) & 1 == 1 {
                                count += 1;
                                if count >= 2 {
                                    break;
                                }
                                sender = v_idx;
                            }
                        }
                    } else if probe_transmitters {
                        for &v in &scratch.transmitters {
                            let connected =
                                g.has_edge(u, v) || (use_dynamic && scratch.dynamic_bit(u, v));
                            if connected {
                                count += 1;
                                if count >= 2 {
                                    break;
                                }
                                sender = v.index();
                            }
                        }
                    } else {
                        let row = g.neighbor_bits(u);
                        let dyn_row = scratch.dynamic_row(u_idx);
                        for w in 0..words {
                            let mut hit = row[w] & scratch.transmitter_bits[w];
                            if use_dynamic {
                                hit |= dyn_row[w] & scratch.transmitter_bits[w];
                            }
                            if hit != 0 {
                                count += hit.count_ones() as usize;
                                if count >= 2 {
                                    break;
                                }
                                sender = w * 64 + hit.trailing_zeros() as usize;
                            }
                        }
                    }
                    let feedback = match count {
                        0 => {
                            metrics.idle_listens += 1;
                            Feedback::Silence
                        }
                        1 => {
                            let sender = NodeId::new(sender);
                            let message = scratch.actions[sender.index()]
                                .message()
                                .expect("a set transmitter bit implies a message");
                            metrics.deliveries += 1;
                            tracker.observe_one(u, sender, message.kind());
                            if recorder.wants_history() {
                                deliveries.push(Delivery {
                                    receiver: u,
                                    sender,
                                    message: message.clone(),
                                });
                            }
                            Feedback::Received(message.clone())
                        }
                        _ => {
                            metrics.collisions += 1;
                            round_collisions += 1;
                            if self.config.collision_detection() {
                                Feedback::Collision
                            } else {
                                Feedback::Silence
                            }
                        }
                    };
                    scratch.feedbacks.push(feedback);
                }
            }

            // 5. Deliver feedback to the processes.
            for (i, feedback) in scratch.feedbacks.iter().enumerate() {
                self.processes[i].on_feedback(round, feedback, &mut self.node_rngs[i]);
            }

            // 6. Record and evaluate the stop condition (already observed
            //    delivery by delivery, in ascending receiver order).
            recorder.push_collisions(round_collisions);
            if recorder.wants_history() {
                recorder.push(RoundRecord {
                    round,
                    transmitters: scratch.transmitters.clone(),
                    active_dynamic_edges: scratch.active_edges.clone(),
                    deliveries,
                });
            }
            metrics.rounds = rounds_executed;

            if tracker.is_done() {
                completion_round = Some(round);
                break;
            }
        }

        metrics.rounds = rounds_executed;
        let record_mode = recorder.mode();
        let (history, collisions_per_round) = recorder.finish();
        ExecutionOutcome {
            completed: completion_round.is_some(),
            rounds_executed,
            completion_round,
            history,
            metrics,
            record_mode,
            collisions_per_round,
        }
    }
}

/// Reusable per-round working memory for [`Simulator::run`]: every buffer is
/// cleared, never reallocated, between rounds, so the steady-state round loop
/// performs no heap allocation beyond what the processes themselves do
/// (under [`RecordMode::Full`], the retained round records are additionally
/// built per round, exactly as before the scratch existed).
///
/// The transmitter set is kept both as a sorted `Vec<NodeId>` (for history
/// records and transmitter probing) and as a packed `u64` bitset aligned
/// with [`dradio_graphs::Graph::neighbor_bits`], so reception resolves 64
/// candidate neighbors per word instead of chasing adjacency `Vec`s. Dynamic
/// edges activated by the link process live in equally packed per-node bit
/// rows; only rows actually touched in a round are cleared afterwards.
#[derive(Debug)]
struct RoundScratch {
    /// Per-node actions of the current round.
    actions: Vec<Action>,
    /// Per-node transmit probabilities (adaptive adversaries only).
    transmit_probs: Vec<f64>,
    /// Per-node end-of-round feedback.
    feedbacks: Vec<Feedback>,
    /// Transmitting nodes, ascending.
    transmitters: Vec<NodeId>,
    /// Packed transmitter bitset (bit `v` set iff node `v` transmits).
    transmitter_bits: Vec<u64>,
    /// Packed per-node dynamic adjacency rows for the current round
    /// (`words_per_row` words per node; empty when the network is static).
    dynamic_rows: Vec<u64>,
    /// Nodes whose dynamic row was written this round (cleared lazily).
    touched_rows: Vec<usize>,
    /// The deduplicated genuine dynamic edges of the current round.
    active_edges: Vec<Edge>,
    /// Words per packed row.
    words_per_row: usize,
}

impl RoundScratch {
    fn new(n: usize, words_per_row: usize, has_dynamic_edges: bool) -> Self {
        RoundScratch {
            actions: Vec::with_capacity(n),
            transmit_probs: Vec::with_capacity(n),
            feedbacks: Vec::with_capacity(n),
            transmitters: Vec::with_capacity(n),
            transmitter_bits: vec![0u64; words_per_row],
            dynamic_rows: if has_dynamic_edges {
                vec![0u64; n.saturating_mul(words_per_row)]
            } else {
                Vec::new()
            },
            touched_rows: Vec::new(),
            active_edges: Vec::new(),
            words_per_row,
        }
    }

    /// Zeroes the dynamic rows touched by the previous round.
    fn clear_dynamic(&mut self) {
        for &row in &self.touched_rows {
            let start = row * self.words_per_row;
            self.dynamic_rows[start..start + self.words_per_row].fill(0);
        }
        self.touched_rows.clear();
    }

    /// Returns `true` if the dynamic edge `(u, v)` is active this round.
    fn dynamic_bit(&self, u: NodeId, v: NodeId) -> bool {
        let idx = u.index() * self.words_per_row + v.index() / 64;
        self.dynamic_rows[idx] >> (v.index() % 64) & 1 == 1
    }

    /// Activates the dynamic edge `(u, v)` for this round.
    fn set_dynamic(&mut self, u: NodeId, v: NodeId) {
        let (ui, vi) = (u.index(), v.index());
        self.dynamic_rows[ui * self.words_per_row + vi / 64] |= 1u64 << (vi % 64);
        self.dynamic_rows[vi * self.words_per_row + ui / 64] |= 1u64 << (ui % 64);
        self.touched_rows.push(ui);
        self.touched_rows.push(vi);
    }

    /// The packed dynamic adjacency row of node `u` (all zeroes when the
    /// network is static).
    fn dynamic_row(&self, u: usize) -> &[u64] {
        if self.dynamic_rows.is_empty() {
            &[]
        } else {
            let start = u * self.words_per_row;
            &self.dynamic_rows[start..start + self.words_per_row]
        }
    }
}

/// Convenience helper: run one simulation end to end.
///
/// # Errors
///
/// Propagates construction errors from [`Simulator::new`].
pub fn run_simulation(
    dual: DualGraph,
    factory: ProcessFactory,
    assignment: Assignment,
    link: Box<dyn LinkProcess>,
    config: SimConfig,
    stop: StopCondition,
) -> Result<ExecutionOutcome> {
    Ok(Simulator::new(dual, factory, assignment, link, config)?.run(stop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkDecision, StaticLinks};
    use crate::message::{Message, MessageKind};
    use crate::process::Role;
    use dradio_graphs::topology;
    use rand::RngCore;
    use std::sync::Arc;

    const DATA: MessageKind = MessageKind::new(1);

    /// Source transmits every round; relays stay silent.
    struct Beacon {
        msg: Option<Message>,
    }

    impl Process for Beacon {
        fn on_round(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Action {
            match &self.msg {
                Some(m) => Action::Transmit(m.clone()),
                None => Action::Listen,
            }
        }
        fn transmit_probability(&self, _round: Round) -> f64 {
            if self.msg.is_some() {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "beacon"
        }
    }

    fn beacon_factory() -> ProcessFactory {
        Arc::new(|ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Source).then(|| Message::plain(ctx.id, DATA, 7));
            Box::new(Beacon { msg }) as Box<dyn Process>
        })
    }

    /// Every broadcaster transmits every round (used to force collisions).
    fn all_broadcasters_factory() -> ProcessFactory {
        Arc::new(|ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Broadcaster).then(|| Message::plain(ctx.id, DATA, 1));
            Box::new(Beacon { msg }) as Box<dyn Process>
        })
    }

    #[test]
    fn construction_validates_inputs() {
        let dual = topology::line(3).unwrap();
        let bad_assignment = Assignment::relays(2);
        let err = Simulator::new(
            dual.clone(),
            beacon_factory(),
            bad_assignment,
            Box::new(StaticLinks::none()),
            SimConfig::default(),
        )
        .err()
        .expect("size mismatch must be rejected");
        assert!(matches!(err, SimError::AssignmentSizeMismatch { .. }));

        let err = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::relays(3),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(0),
        )
        .err()
        .expect("zero horizon must be rejected");
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn single_transmitter_is_received_by_g_neighbors() {
        let dual = topology::star(5).unwrap(); // hub 0, leaves 1..4
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(5, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.rounds_executed, 1);
        // All 4 leaves hear the hub in round 0.
        assert_eq!(out.metrics.deliveries, 4);
        for leaf in 1..5 {
            assert!(out.history.received_kind(NodeId::new(leaf), DATA));
        }
    }

    #[test]
    fn two_transmitting_neighbors_collide() {
        // Path 1 - 0 - 2 with broadcasters at 1 and 2: node 0 hears nothing.
        let dual = topology::star(3).unwrap();
        let sim = Simulator::new(
            dual,
            all_broadcasters_factory(),
            Assignment::local(3, &[NodeId::new(1), NodeId::new(2)]),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(3),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.metrics.deliveries, 0);
        assert!(out.metrics.collisions > 0);
        assert!(!out.history.received_any(NodeId::new(0)));
    }

    #[test]
    fn transmitters_do_not_receive() {
        // Two nodes, both broadcasters: each transmits every round, so
        // neither ever receives (half duplex).
        let dual = topology::line(2).unwrap();
        let sim = Simulator::new(
            dual,
            all_broadcasters_factory(),
            Assignment::local(2, &[NodeId::new(0), NodeId::new(1)]),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(5),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.metrics.deliveries, 0);
        assert_eq!(out.metrics.collisions, 0);
        assert_eq!(out.metrics.transmissions, 2 * 5);
    }

    #[test]
    fn dynamic_edges_change_reception() {
        // Dual clique n = 4: bridge (1, 2). Beacon at node 0 (side A, not the
        // bridge endpoint). With no dynamic links only side A hears it; with
        // all dynamic links every other node hears it.
        let dual = topology::dual_clique(4).unwrap();
        let assignment = Assignment::global(4, NodeId::new(0));

        let sim = Simulator::new(
            dual.clone(),
            beacon_factory(),
            assignment.clone(),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert!(out.history.received_kind(NodeId::new(1), DATA));
        assert!(!out.history.received_kind(NodeId::new(2), DATA));
        assert!(!out.history.received_kind(NodeId::new(3), DATA));

        let sim = Simulator::new(
            dual,
            beacon_factory(),
            assignment,
            Box::new(StaticLinks::all()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        for other in [1usize, 2, 3] {
            assert!(out.history.received_kind(NodeId::new(other), DATA));
        }
    }

    #[test]
    fn stop_condition_ends_execution_early() {
        let dual = topology::star(6).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(6, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(100),
        )
        .unwrap();
        let out = sim.run(StopCondition::global_broadcast(DATA, NodeId::new(0)));
        assert!(out.completed);
        assert_eq!(out.completion_round, Some(Round::new(0)));
        assert_eq!(out.rounds_executed, 1);
        assert_eq!(out.cost(), 1);
    }

    #[test]
    fn horizon_bounds_execution() {
        // A line where the source's message can never travel past the first
        // hop (source transmits forever, blocking nothing, but node 1 never
        // relays), so the global condition is unreachable.
        let dual = topology::line(4).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(4, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(20),
        )
        .unwrap();
        let out = sim.run(StopCondition::global_broadcast(DATA, NodeId::new(0)));
        assert!(!out.completed);
        assert_eq!(out.rounds_executed, 20);
        assert_eq!(out.cost(), 20);
        assert_eq!(out.completion_round, None);
    }

    #[test]
    fn executions_are_deterministic_per_seed() {
        let make = |seed| {
            let dual = topology::dual_clique(8).unwrap();
            Simulator::new(
                dual,
                beacon_factory(),
                Assignment::global(8, NodeId::new(0)),
                Box::new(StaticLinks::all()),
                SimConfig::default().with_max_rounds(30).with_seed(seed),
            )
            .unwrap()
            .run(StopCondition::max_rounds())
        };
        let a = make(7);
        let b = make(7);
        assert_eq!(a.history, b.history);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    #[should_panic(expected = "stop condition references node")]
    fn stop_condition_out_of_range_panics() {
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::relays(3),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let _ = sim.run(StopCondition::global_broadcast(DATA, NodeId::new(9)));
    }

    /// A malicious link process that proposes edges outside `E' \ E`; the
    /// engine must reject them and count the attempts.
    struct CheatingAdversary;
    impl LinkProcess for CheatingAdversary {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }
        fn decide(&mut self, _view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
            // Propose a reliable edge (0,1) of the line — not a dynamic edge.
            LinkDecision::from_edges(vec![Edge::new(NodeId::new(0), NodeId::new(1))])
        }
    }

    #[test]
    fn non_dynamic_proposals_are_rejected_and_counted() {
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(3, NodeId::new(0)),
            Box::new(CheatingAdversary),
            SimConfig::default().with_max_rounds(4),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.metrics.rejected_link_edges, 4);
        for record in out.history.records() {
            assert!(record.active_dynamic_edges.is_empty());
        }
        // The reliable edge still works: node 1 hears the source.
        assert!(out.history.received_kind(NodeId::new(1), DATA));
    }

    /// An online-adaptive adversary that records whether it was shown history
    /// and probabilities but not actions.
    struct ViewSpy {
        class: AdversaryClass,
        saw_history: bool,
        saw_probs: bool,
        saw_actions: bool,
    }
    impl LinkProcess for ViewSpy {
        fn class(&self) -> AdversaryClass {
            self.class
        }
        fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
            self.saw_history |= view.history().is_some();
            self.saw_probs |= view.transmit_probabilities().is_some();
            self.saw_actions |= view.actions().is_some();
            LinkDecision::none()
        }
    }

    fn spy_views(class: AdversaryClass) -> (bool, bool, bool) {
        // Box the spy, run, then inspect via a shared cell: simplest is to
        // run with a raw pointer-free approach — use Arc<Mutex<..>> free
        // alternative: we recreate the spy after the run by returning the
        // flags through a channel. Instead, we exploit that `run` consumes
        // the simulator, so we capture flags with a scoped static pattern:
        // store them in a Box and read back via Box::leak-free trick is
        // overkill; simply wrap flags in Arc<std::sync::Mutex<_>>.
        use std::sync::{Arc as SArc, Mutex};
        #[derive(Default)]
        struct Flags {
            history: bool,
            probs: bool,
            actions: bool,
        }
        struct SharedSpy {
            class: AdversaryClass,
            flags: SArc<Mutex<Flags>>,
        }
        impl LinkProcess for SharedSpy {
            fn class(&self) -> AdversaryClass {
                self.class
            }
            fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
                let mut f = self.flags.lock().unwrap();
                f.history |= view.history().is_some();
                f.probs |= view.transmit_probabilities().is_some();
                f.actions |= view.actions().is_some();
                LinkDecision::none()
            }
        }
        let flags = SArc::new(Mutex::new(Flags::default()));
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(3, NodeId::new(0)),
            Box::new(SharedSpy {
                class,
                flags: flags.clone(),
            }),
            SimConfig::default().with_max_rounds(2),
        )
        .unwrap();
        let _ = sim.run(StopCondition::max_rounds());
        let f = flags.lock().unwrap();
        (f.history, f.probs, f.actions)
    }

    #[test]
    fn adversary_views_are_scoped_by_class() {
        // Silence the unused-struct warning for the illustrative ViewSpy.
        let _ = ViewSpy {
            class: AdversaryClass::Oblivious,
            saw_history: false,
            saw_probs: false,
            saw_actions: false,
        };

        assert_eq!(spy_views(AdversaryClass::Oblivious), (false, false, false));
        assert_eq!(
            spy_views(AdversaryClass::OnlineAdaptive),
            (true, true, false)
        );
        assert_eq!(
            spy_views(AdversaryClass::OfflineAdaptive),
            (true, true, true)
        );
    }

    /// A link process that proposes the same dynamic edge several times per
    /// round (plus one non-dynamic edge), to pin the engine's deduplication.
    struct RepeatingAdversary;
    impl LinkProcess for RepeatingAdversary {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }
        fn decide(&mut self, _view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
            // On the dual clique of 4 (sides {0,1} / {2,3}, bridge (1,2)),
            // (0,2) and (0,3) are dynamic; (0,1) is reliable.
            let dynamic = Edge::new(NodeId::new(0), NodeId::new(2));
            let other = Edge::new(NodeId::new(0), NodeId::new(3));
            let reliable = Edge::new(NodeId::new(0), NodeId::new(1));
            LinkDecision::from_edges(vec![dynamic, other, dynamic, reliable, dynamic])
        }
    }

    #[test]
    fn repeated_link_edges_are_deduplicated_once_per_round() {
        let dual = topology::dual_clique(4).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(4, NodeId::new(0)),
            Box::new(RepeatingAdversary),
            SimConfig::default().with_max_rounds(3),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        for record in out.history.records() {
            assert_eq!(
                record.active_dynamic_edges,
                vec![
                    Edge::new(NodeId::new(0), NodeId::new(2)),
                    Edge::new(NodeId::new(0), NodeId::new(3)),
                ],
                "duplicates dropped, first-occurrence order kept"
            );
        }
        // Only the reliable proposal is rejected; duplicates are not.
        assert_eq!(out.metrics.rejected_link_edges, 3);
        // The dynamic edges genuinely carry: both far-side nodes hear node 0.
        assert!(out.history.received_kind(NodeId::new(2), DATA));
        assert!(out.history.received_kind(NodeId::new(3), DATA));
    }

    #[test]
    fn record_modes_agree_on_behaviour_and_metrics() {
        use crate::recorder::RecordMode;
        let run_with = |mode: RecordMode| {
            let dual = topology::dual_clique(8).unwrap();
            Simulator::new(
                dual,
                all_broadcasters_factory(),
                Assignment::local(8, &[NodeId::new(0), NodeId::new(1), NodeId::new(4)]),
                Box::new(StaticLinks::all()),
                SimConfig::default()
                    .with_max_rounds(12)
                    .with_seed(3)
                    .with_record_mode(mode),
            )
            .unwrap()
            .run(StopCondition::max_rounds())
        };
        let full = run_with(RecordMode::Full);
        let collisions_only = run_with(RecordMode::CollisionsOnly);
        let none = run_with(RecordMode::None);

        assert_eq!(full.metrics, collisions_only.metrics);
        assert_eq!(full.metrics, none.metrics);
        assert_eq!(full.rounds_executed, none.rounds_executed);
        assert_eq!(full.completion_round, none.completion_round);

        assert_eq!(full.record_mode, RecordMode::Full);
        assert_eq!(full.history.len(), 12);
        assert_eq!(full.collisions_per_round.len(), 12);
        assert_eq!(
            full.collisions_per_round.iter().sum::<usize>(),
            full.metrics.collisions
        );

        assert_eq!(collisions_only.record_mode, RecordMode::CollisionsOnly);
        assert!(collisions_only.history.is_empty());
        assert_eq!(
            collisions_only.collisions_per_round,
            full.collisions_per_round
        );

        assert_eq!(none.record_mode, RecordMode::None);
        assert!(none.history.is_empty());
        assert!(none.collisions_per_round.is_empty());
    }

    #[test]
    fn stop_conditions_fire_identically_without_recording() {
        use crate::recorder::RecordMode;
        let run_with = |mode: RecordMode| {
            let dual = topology::star(6).unwrap();
            Simulator::new(
                dual,
                beacon_factory(),
                Assignment::global(6, NodeId::new(0)),
                Box::new(StaticLinks::none()),
                SimConfig::default()
                    .with_max_rounds(100)
                    .with_record_mode(mode),
            )
            .unwrap()
            .run(StopCondition::global_broadcast(DATA, NodeId::new(0)))
        };
        let full = run_with(RecordMode::Full);
        let none = run_with(RecordMode::None);
        assert!(full.completed && none.completed);
        assert_eq!(full.completion_round, none.completion_round);
        assert_eq!(full.cost(), none.cost());
        assert_eq!(full.metrics, none.metrics);
    }

    #[test]
    fn adaptive_adversaries_promote_to_full_recording() {
        use crate::recorder::RecordMode;
        // An online-adaptive adversary asked to run without recording still
        // sees (and the outcome still carries) the full history.
        struct NeedsHistory;
        impl LinkProcess for NeedsHistory {
            fn class(&self) -> AdversaryClass {
                AdversaryClass::OnlineAdaptive
            }
            fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
                let history = view.history().expect("adaptive classes see history");
                assert_eq!(history.len(), view.round().index());
                LinkDecision::none()
            }
        }
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(3, NodeId::new(0)),
            Box::new(NeedsHistory),
            SimConfig::default()
                .with_max_rounds(5)
                .with_record_mode(RecordMode::None),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.record_mode, RecordMode::Full);
        assert_eq!(out.history.len(), 5);
    }

    #[test]
    fn empty_receiver_condition_completes_without_rounds() {
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::relays(3),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(10),
        )
        .unwrap();
        let out = sim.run(StopCondition::local_broadcast(vec![], vec![NodeId::new(0)]));
        assert!(out.completed);
        assert_eq!(out.rounds_executed, 0);
    }
}
