//! The round-by-round execution engine.

use std::sync::Arc;

use dradio_graphs::DualGraph;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::executor::TrialExecutor;
use crate::history::History;
use crate::link::LinkProcess;
use crate::metrics::Metrics;
use crate::process::{Assignment, ProcessFactory};
use crate::recorder::RecordMode;
use crate::round::Round;
use crate::stop::StopCondition;
use crate::Result;

/// The result of running an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// Whether the stop condition was satisfied before the horizon.
    pub completed: bool,
    /// Number of rounds actually executed.
    pub rounds_executed: usize,
    /// The round in which the stop condition became satisfied, if it did.
    pub completion_round: Option<Round>,
    /// Per-round history of the execution. Complete when [`record_mode`]
    /// is [`RecordMode::Full`]; empty otherwise.
    ///
    /// [`record_mode`]: ExecutionOutcome::record_mode
    pub history: History,
    /// Aggregate counters (identical under every record mode).
    pub metrics: Metrics,
    /// The record mode the execution effectively ran with, after the
    /// adaptive-adversary promotion rule (see [`RecordMode::effective_for`]).
    pub record_mode: RecordMode,
    /// Collisions per executed round; retained under [`RecordMode::Full`]
    /// and [`RecordMode::CollisionsOnly`], empty under [`RecordMode::None`].
    pub collisions_per_round: Vec<usize>,
}

impl ExecutionOutcome {
    /// Rounds until completion if the condition was met, otherwise the number
    /// of rounds executed (the horizon). Experiments use this as the measured
    /// cost, treating non-completion as a censored observation at the
    /// horizon.
    pub fn cost(&self) -> usize {
        match self.completion_round {
            Some(r) => r.index() + 1,
            None => self.rounds_executed,
        }
    }

    /// The typed per-trial measurement of this execution: cost, completion,
    /// aggregate collisions, and — when the effective record mode retained
    /// one — the per-round collision curve (cloned; use
    /// [`ExecutionOutcome::into_trial_metrics`] to take it without copying).
    pub fn trial_metrics(&self) -> crate::TrialMetrics {
        crate::TrialMetrics {
            rounds: self.cost(),
            completed: self.completed,
            collisions: self.metrics.collisions,
            collisions_per_round: self
                .record_mode
                .records_collisions()
                .then(|| self.collisions_per_round.clone()),
        }
    }

    /// Consumes the outcome into its [`TrialMetrics`](crate::TrialMetrics),
    /// moving the collision curve instead of cloning it.
    pub fn into_trial_metrics(self) -> crate::TrialMetrics {
        let rounds = self.cost();
        crate::TrialMetrics {
            rounds,
            completed: self.completed,
            collisions: self.metrics.collisions,
            collisions_per_round: self
                .record_mode
                .records_collisions()
                .then_some(self.collisions_per_round),
        }
    }
}

/// Derives a per-stream seed from the master seed (splitmix64 finalizer, so
/// adjacent stream indices get uncorrelated streams). The engine uses it for
/// per-node and adversary random streams; the scenario runner reuses it to
/// derive independent per-trial master seeds.
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A configured dual-graph radio network simulation.
///
/// A `Simulator` is single-shot: [`Simulator::run`] consumes it. Internally
/// it is a thin shell over [`TrialExecutor`] — the reusable harness callers
/// with many trials of the same configuration should use directly — so the
/// two produce identical executions by construction.
///
/// See the [crate documentation](crate) for the model and an end-to-end
/// example.
pub struct Simulator {
    dual: Arc<DualGraph>,
    link: Box<dyn LinkProcess>,
    config: SimConfig,
    factory: ProcessFactory,
    assignment: Assignment,
}

impl Simulator {
    /// Builds a simulation over `dual` (accepted owned or as a shared
    /// [`Arc`], so fan-out callers never copy the network). Processes and
    /// the deterministic per-node random streams are instantiated by
    /// [`Simulator::run`], derived from the configured master seed.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyNetwork`] if the network has no nodes.
    /// * [`SimError::AssignmentSizeMismatch`] if `assignment` covers a
    ///   different number of nodes.
    /// * [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(
        dual: impl Into<Arc<DualGraph>>,
        factory: ProcessFactory,
        assignment: Assignment,
        link: Box<dyn LinkProcess>,
        config: SimConfig,
    ) -> Result<Self> {
        let dual = dual.into();
        config.validate()?;
        let n = dual.len();
        if n == 0 {
            return Err(SimError::EmptyNetwork);
        }
        if assignment.len() != n {
            return Err(SimError::AssignmentSizeMismatch {
                network: n,
                assignment: assignment.len(),
            });
        }
        Ok(Simulator {
            dual,
            link,
            config,
            factory,
            assignment,
        })
    }

    /// The network being simulated.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the execution until `stop` is satisfied or the round horizon is
    /// reached, consuming the simulator.
    ///
    /// How much of the execution is retained is governed by the
    /// configuration's [`RecordMode`] (default [`RecordMode::Full`]);
    /// behaviour and [`Metrics`] are identical under every mode.
    ///
    /// Implemented on top of [`TrialExecutor`]: the simulator wraps its
    /// parts into a single-shot executor and runs one trial with the
    /// configured seed and record mode, so the two entry points cannot
    /// diverge.
    ///
    /// # Panics
    ///
    /// Panics if `stop` references nodes outside the network (a programming
    /// error in the experiment setup, not a runtime condition).
    pub fn run(self, stop: StopCondition) -> ExecutionOutcome {
        let seed = self.config.seed();
        let record_mode = self.config.record_mode();
        let mut executor = TrialExecutor::single_shot(
            self.dual,
            self.factory,
            self.assignment,
            self.link,
            stop,
            self.config,
        )
        // lint: allow(D4) -- the same inputs passed Simulator::new validation already
        .expect("simulator inputs were validated at construction");
        executor.execute(seed, record_mode)
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.dual.len())
            .field("link", &self.link.name())
            .field("config", &self.config)
            .finish()
    }
}

/// Convenience helper: run one simulation end to end.
///
/// # Errors
///
/// Propagates construction errors from [`Simulator::new`].
pub fn run_simulation(
    dual: DualGraph,
    factory: ProcessFactory,
    assignment: Assignment,
    link: Box<dyn LinkProcess>,
    config: SimConfig,
    stop: StopCondition,
) -> Result<ExecutionOutcome> {
    Ok(Simulator::new(dual, factory, assignment, link, config)?.run(stop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::link::{AdversaryClass, AdversaryView, LinkDecision, StaticLinks};
    use crate::message::{Message, MessageKind};
    use crate::process::{Process, ProcessContext, Role};
    use dradio_graphs::{topology, Edge, NodeId};
    use rand::RngCore;
    use std::sync::Arc;

    const DATA: MessageKind = MessageKind::new(1);

    /// Source transmits every round; relays stay silent.
    struct Beacon {
        msg: Option<Message>,
    }

    impl Process for Beacon {
        fn on_round(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Action {
            match &self.msg {
                Some(m) => Action::Transmit(m.clone()),
                None => Action::Listen,
            }
        }
        fn transmit_probability(&self, _round: Round) -> f64 {
            if self.msg.is_some() {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "beacon"
        }
    }

    fn beacon_factory() -> ProcessFactory {
        Arc::new(|ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Source).then(|| Message::plain(ctx.id, DATA, 7));
            Box::new(Beacon { msg }) as Box<dyn Process>
        })
    }

    /// Every broadcaster transmits every round (used to force collisions).
    fn all_broadcasters_factory() -> ProcessFactory {
        Arc::new(|ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Broadcaster).then(|| Message::plain(ctx.id, DATA, 1));
            Box::new(Beacon { msg }) as Box<dyn Process>
        })
    }

    #[test]
    fn construction_validates_inputs() {
        let dual = topology::line(3).unwrap();
        let bad_assignment = Assignment::relays(2);
        let err = Simulator::new(
            dual.clone(),
            beacon_factory(),
            bad_assignment,
            Box::new(StaticLinks::none()),
            SimConfig::default(),
        )
        .expect_err("size mismatch must be rejected");
        assert!(matches!(err, SimError::AssignmentSizeMismatch { .. }));

        let err = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::relays(3),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(0),
        )
        .expect_err("zero horizon must be rejected");
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn single_transmitter_is_received_by_g_neighbors() {
        let dual = topology::star(5).unwrap(); // hub 0, leaves 1..4
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(5, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.rounds_executed, 1);
        // All 4 leaves hear the hub in round 0.
        assert_eq!(out.metrics.deliveries, 4);
        for leaf in 1..5 {
            assert!(out.history.received_kind(NodeId::new(leaf), DATA));
        }
    }

    #[test]
    fn two_transmitting_neighbors_collide() {
        // Path 1 - 0 - 2 with broadcasters at 1 and 2: node 0 hears nothing.
        let dual = topology::star(3).unwrap();
        let sim = Simulator::new(
            dual,
            all_broadcasters_factory(),
            Assignment::local(3, &[NodeId::new(1), NodeId::new(2)]),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(3),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.metrics.deliveries, 0);
        assert!(out.metrics.collisions > 0);
        assert!(!out.history.received_any(NodeId::new(0)));
    }

    #[test]
    fn transmitters_do_not_receive() {
        // Two nodes, both broadcasters: each transmits every round, so
        // neither ever receives (half duplex).
        let dual = topology::line(2).unwrap();
        let sim = Simulator::new(
            dual,
            all_broadcasters_factory(),
            Assignment::local(2, &[NodeId::new(0), NodeId::new(1)]),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(5),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.metrics.deliveries, 0);
        assert_eq!(out.metrics.collisions, 0);
        assert_eq!(out.metrics.transmissions, 2 * 5);
    }

    #[test]
    fn dynamic_edges_change_reception() {
        // Dual clique n = 4: bridge (1, 2). Beacon at node 0 (side A, not the
        // bridge endpoint). With no dynamic links only side A hears it; with
        // all dynamic links every other node hears it.
        let dual = topology::dual_clique(4).unwrap();
        let assignment = Assignment::global(4, NodeId::new(0));

        let sim = Simulator::new(
            dual.clone(),
            beacon_factory(),
            assignment.clone(),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert!(out.history.received_kind(NodeId::new(1), DATA));
        assert!(!out.history.received_kind(NodeId::new(2), DATA));
        assert!(!out.history.received_kind(NodeId::new(3), DATA));

        let sim = Simulator::new(
            dual,
            beacon_factory(),
            assignment,
            Box::new(StaticLinks::all()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        for other in [1usize, 2, 3] {
            assert!(out.history.received_kind(NodeId::new(other), DATA));
        }
    }

    #[test]
    fn stop_condition_ends_execution_early() {
        let dual = topology::star(6).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(6, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(100),
        )
        .unwrap();
        let out = sim.run(StopCondition::global_broadcast(DATA, NodeId::new(0)));
        assert!(out.completed);
        assert_eq!(out.completion_round, Some(Round::new(0)));
        assert_eq!(out.rounds_executed, 1);
        assert_eq!(out.cost(), 1);
    }

    #[test]
    fn horizon_bounds_execution() {
        // A line where the source's message can never travel past the first
        // hop (source transmits forever, blocking nothing, but node 1 never
        // relays), so the global condition is unreachable.
        let dual = topology::line(4).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(4, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(20),
        )
        .unwrap();
        let out = sim.run(StopCondition::global_broadcast(DATA, NodeId::new(0)));
        assert!(!out.completed);
        assert_eq!(out.rounds_executed, 20);
        assert_eq!(out.cost(), 20);
        assert_eq!(out.completion_round, None);
    }

    #[test]
    fn executions_are_deterministic_per_seed() {
        let make = |seed| {
            let dual = topology::dual_clique(8).unwrap();
            Simulator::new(
                dual,
                beacon_factory(),
                Assignment::global(8, NodeId::new(0)),
                Box::new(StaticLinks::all()),
                SimConfig::default().with_max_rounds(30).with_seed(seed),
            )
            .unwrap()
            .run(StopCondition::max_rounds())
        };
        let a = make(7);
        let b = make(7);
        assert_eq!(a.history, b.history);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    #[should_panic(expected = "stop condition references node")]
    fn stop_condition_out_of_range_panics() {
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::relays(3),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(1),
        )
        .unwrap();
        let _ = sim.run(StopCondition::global_broadcast(DATA, NodeId::new(9)));
    }

    /// A malicious link process that proposes edges outside `E' \ E`; the
    /// engine must reject them and count the attempts.
    struct CheatingAdversary;
    impl LinkProcess for CheatingAdversary {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }
        fn decide(&mut self, _view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
            // Propose a reliable edge (0,1) of the line — not a dynamic edge.
            LinkDecision::from_edges(vec![Edge::new(NodeId::new(0), NodeId::new(1))])
        }
    }

    #[test]
    fn non_dynamic_proposals_are_rejected_and_counted() {
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(3, NodeId::new(0)),
            Box::new(CheatingAdversary),
            SimConfig::default().with_max_rounds(4),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.metrics.rejected_link_edges, 4);
        for record in out.history.records() {
            assert!(record.active_dynamic_edges.is_empty());
        }
        // The reliable edge still works: node 1 hears the source.
        assert!(out.history.received_kind(NodeId::new(1), DATA));
    }

    /// An online-adaptive adversary that records whether it was shown history
    /// and probabilities but not actions.
    struct ViewSpy {
        class: AdversaryClass,
        saw_history: bool,
        saw_probs: bool,
        saw_actions: bool,
    }
    impl LinkProcess for ViewSpy {
        fn class(&self) -> AdversaryClass {
            self.class
        }
        fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
            self.saw_history |= view.history().is_some();
            self.saw_probs |= view.transmit_probabilities().is_some();
            self.saw_actions |= view.actions().is_some();
            LinkDecision::none()
        }
    }

    fn spy_views(class: AdversaryClass) -> (bool, bool, bool) {
        // Box the spy, run, then inspect via a shared cell: simplest is to
        // run with a raw pointer-free approach — use Arc<Mutex<..>> free
        // alternative: we recreate the spy after the run by returning the
        // flags through a channel. Instead, we exploit that `run` consumes
        // the simulator, so we capture flags with a scoped static pattern:
        // store them in a Box and read back via Box::leak-free trick is
        // overkill; simply wrap flags in Arc<std::sync::Mutex<_>>.
        use std::sync::{Arc as SArc, Mutex};
        #[derive(Default)]
        struct Flags {
            history: bool,
            probs: bool,
            actions: bool,
        }
        struct SharedSpy {
            class: AdversaryClass,
            flags: SArc<Mutex<Flags>>,
        }
        impl LinkProcess for SharedSpy {
            fn class(&self) -> AdversaryClass {
                self.class
            }
            fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
                let mut f = self.flags.lock().unwrap();
                f.history |= view.history().is_some();
                f.probs |= view.transmit_probabilities().is_some();
                f.actions |= view.actions().is_some();
                LinkDecision::none()
            }
        }
        let flags = SArc::new(Mutex::new(Flags::default()));
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(3, NodeId::new(0)),
            Box::new(SharedSpy {
                class,
                flags: flags.clone(),
            }),
            SimConfig::default().with_max_rounds(2),
        )
        .unwrap();
        let _ = sim.run(StopCondition::max_rounds());
        let f = flags.lock().unwrap();
        (f.history, f.probs, f.actions)
    }

    #[test]
    fn adversary_views_are_scoped_by_class() {
        // Silence the unused-struct warning for the illustrative ViewSpy.
        let _ = ViewSpy {
            class: AdversaryClass::Oblivious,
            saw_history: false,
            saw_probs: false,
            saw_actions: false,
        };

        assert_eq!(spy_views(AdversaryClass::Oblivious), (false, false, false));
        assert_eq!(
            spy_views(AdversaryClass::OnlineAdaptive),
            (true, true, false)
        );
        assert_eq!(
            spy_views(AdversaryClass::OfflineAdaptive),
            (true, true, true)
        );
    }

    /// A link process that proposes the same dynamic edge several times per
    /// round (plus one non-dynamic edge), to pin the engine's deduplication.
    struct RepeatingAdversary;
    impl LinkProcess for RepeatingAdversary {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }
        fn decide(&mut self, _view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
            // On the dual clique of 4 (sides {0,1} / {2,3}, bridge (1,2)),
            // (0,2) and (0,3) are dynamic; (0,1) is reliable.
            let dynamic = Edge::new(NodeId::new(0), NodeId::new(2));
            let other = Edge::new(NodeId::new(0), NodeId::new(3));
            let reliable = Edge::new(NodeId::new(0), NodeId::new(1));
            LinkDecision::from_edges(vec![dynamic, other, dynamic, reliable, dynamic])
        }
    }

    #[test]
    fn repeated_link_edges_are_deduplicated_once_per_round() {
        let dual = topology::dual_clique(4).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(4, NodeId::new(0)),
            Box::new(RepeatingAdversary),
            SimConfig::default().with_max_rounds(3),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        for record in out.history.records() {
            assert_eq!(
                record.active_dynamic_edges,
                vec![
                    Edge::new(NodeId::new(0), NodeId::new(2)),
                    Edge::new(NodeId::new(0), NodeId::new(3)),
                ],
                "duplicates dropped, first-occurrence order kept"
            );
        }
        // Only the reliable proposal is rejected; duplicates are not.
        assert_eq!(out.metrics.rejected_link_edges, 3);
        // The dynamic edges genuinely carry: both far-side nodes hear node 0.
        assert!(out.history.received_kind(NodeId::new(2), DATA));
        assert!(out.history.received_kind(NodeId::new(3), DATA));
    }

    #[test]
    fn record_modes_agree_on_behaviour_and_metrics() {
        use crate::recorder::RecordMode;
        let run_with = |mode: RecordMode| {
            let dual = topology::dual_clique(8).unwrap();
            Simulator::new(
                dual,
                all_broadcasters_factory(),
                Assignment::local(8, &[NodeId::new(0), NodeId::new(1), NodeId::new(4)]),
                Box::new(StaticLinks::all()),
                SimConfig::default()
                    .with_max_rounds(12)
                    .with_seed(3)
                    .with_record_mode(mode),
            )
            .unwrap()
            .run(StopCondition::max_rounds())
        };
        let full = run_with(RecordMode::Full);
        let collisions_only = run_with(RecordMode::CollisionsOnly);
        let none = run_with(RecordMode::None);

        assert_eq!(full.metrics, collisions_only.metrics);
        assert_eq!(full.metrics, none.metrics);
        assert_eq!(full.rounds_executed, none.rounds_executed);
        assert_eq!(full.completion_round, none.completion_round);

        assert_eq!(full.record_mode, RecordMode::Full);
        assert_eq!(full.history.len(), 12);
        assert_eq!(full.collisions_per_round.len(), 12);
        assert_eq!(
            full.collisions_per_round.iter().sum::<usize>(),
            full.metrics.collisions
        );

        assert_eq!(collisions_only.record_mode, RecordMode::CollisionsOnly);
        assert!(collisions_only.history.is_empty());
        assert_eq!(
            collisions_only.collisions_per_round,
            full.collisions_per_round
        );

        assert_eq!(none.record_mode, RecordMode::None);
        assert!(none.history.is_empty());
        assert!(none.collisions_per_round.is_empty());
    }

    #[test]
    fn stop_conditions_fire_identically_without_recording() {
        use crate::recorder::RecordMode;
        let run_with = |mode: RecordMode| {
            let dual = topology::star(6).unwrap();
            Simulator::new(
                dual,
                beacon_factory(),
                Assignment::global(6, NodeId::new(0)),
                Box::new(StaticLinks::none()),
                SimConfig::default()
                    .with_max_rounds(100)
                    .with_record_mode(mode),
            )
            .unwrap()
            .run(StopCondition::global_broadcast(DATA, NodeId::new(0)))
        };
        let full = run_with(RecordMode::Full);
        let none = run_with(RecordMode::None);
        assert!(full.completed && none.completed);
        assert_eq!(full.completion_round, none.completion_round);
        assert_eq!(full.cost(), none.cost());
        assert_eq!(full.metrics, none.metrics);
    }

    #[test]
    fn adaptive_adversaries_promote_to_full_recording() {
        use crate::recorder::RecordMode;
        // An online-adaptive adversary asked to run without recording still
        // sees (and the outcome still carries) the full history.
        struct NeedsHistory;
        impl LinkProcess for NeedsHistory {
            fn class(&self) -> AdversaryClass {
                AdversaryClass::OnlineAdaptive
            }
            fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
                let history = view.history().expect("adaptive classes see history");
                assert_eq!(history.len(), view.round().index());
                LinkDecision::none()
            }
        }
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::global(3, NodeId::new(0)),
            Box::new(NeedsHistory),
            SimConfig::default()
                .with_max_rounds(5)
                .with_record_mode(RecordMode::None),
        )
        .unwrap();
        let out = sim.run(StopCondition::max_rounds());
        assert_eq!(out.record_mode, RecordMode::Full);
        assert_eq!(out.history.len(), 5);
    }

    #[test]
    fn empty_receiver_condition_completes_without_rounds() {
        let dual = topology::line(3).unwrap();
        let sim = Simulator::new(
            dual,
            beacon_factory(),
            Assignment::relays(3),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_max_rounds(10),
        )
        .unwrap();
        let out = sim.run(StopCondition::local_broadcast(vec![], vec![NodeId::new(0)]));
        assert!(out.completed);
        assert_eq!(out.rounds_executed, 0);
    }
}
