//! Simulator error types.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or constructing a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The role assignment covers a different number of nodes than the
    /// network has.
    AssignmentSizeMismatch {
        /// Nodes in the network.
        network: usize,
        /// Nodes covered by the assignment.
        assignment: usize,
    },
    /// The network has no nodes.
    EmptyNetwork,
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// A stop condition references nodes outside the network.
    InvalidStopCondition {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// The requested combination cannot run on the bit-sliced batch
    /// executor (adaptive adversary, full history recording, or an
    /// oversized lane group); callers should fall back to the scalar
    /// `TrialExecutor`.
    UnsupportedBatch {
        /// Human-readable description of what made the run unbatchable.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::AssignmentSizeMismatch {
                network,
                assignment,
            } => write!(
                f,
                "role assignment covers {assignment} nodes but the network has {network}"
            ),
            SimError::EmptyNetwork => write!(f, "cannot simulate an empty network"),
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::InvalidStopCondition { reason } => {
                write!(f, "invalid stop condition: {reason}")
            }
            SimError::UnsupportedBatch { reason } => {
                write!(f, "batch execution unsupported: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::AssignmentSizeMismatch {
            network: 5,
            assignment: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        assert!(!SimError::EmptyNetwork.to_string().is_empty());
        assert!(SimError::InvalidConfig { reason: "x".into() }
            .to_string()
            .contains('x'));
        assert!(SimError::UnsupportedBatch {
            reason: "adaptive adversary".into()
        }
        .to_string()
        .contains("adaptive adversary"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync>(_e: E) {}
        assert_error(SimError::EmptyNetwork);
    }
}
