//! Reusable trial execution: build the expensive parts once, run many seeds.
//!
//! [`Simulator`](crate::Simulator) is a single-shot value: constructing one
//! copies the network, boxes one process per node, and seeds every random
//! stream — and [`Simulator::run`](crate::Simulator::run) consumes it. For a
//! lone execution that is the right shape, but trial fan-out (hundreds of
//! short executions of the same scenario under different seeds) pays the
//! whole setup bill per trial, and after the round loop itself was made
//! allocation-free that bill *dominates* short executions.
//!
//! A [`TrialExecutor`] splits the state by lifetime instead:
//!
//! * **shared, immutable across trials** — the network (held as an
//!   [`Arc<DualGraph>`], never cloned), the process factory, the role
//!   assignment, the stop condition, and the configuration;
//! * **owned, reused across trials** — the process vector (the `Vec` is
//!   cleared and refilled, not reallocated), the per-node RNG vector
//!   (reseeded in place), the adversary RNG, the link process (reused when
//!   [`LinkProcess::reset`] succeeds, rebuilt from the [`LinkFactory`]
//!   otherwise), the [`StopTracker`] (reset in place), and the round
//!   scratch memory.
//!
//! [`TrialExecutor::execute`] is *deterministically equivalent* to building
//! a fresh `Simulator` with the same seed and running it: the per-node and
//! adversary streams are derived from the seed exactly as
//! [`Simulator::new`](crate::Simulator::new) derives them, and the round
//! loop is the same code (`Simulator::run` is implemented on top of this
//! type). The root `integration_executor` test suite pins outcome equality
//! across every registered algorithm × adversary × problem class.

use std::sync::Arc;

use dradio_graphs::{DualGraph, Edge, GraphBackend, NeighborRow, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::action::{Action, Feedback};
use crate::config::SimConfig;
use crate::engine::{derive_stream_seed, ExecutionOutcome};
use crate::error::SimError;
use crate::history::{Delivery, RoundRecord};
use crate::link::{AdversaryClass, AdversarySetup, AdversaryView, LinkProcess};
use crate::metrics::Metrics;
use crate::process::{Assignment, Process, ProcessContext, ProcessFactory};
use crate::recorder::{RecordMode, Recorder};
use crate::round::Round;
use crate::stop::{StopCondition, StopTracker};
use crate::Result;

/// Builds one fresh link process per execution. Adversaries are stateful, so
/// reusable executors store this recipe; it is only invoked when the previous
/// trial's process cannot [`reset`](LinkProcess::reset) itself.
pub type LinkFactory = Arc<dyn Fn() -> Box<dyn LinkProcess> + Send + Sync>;

/// A reusable execution harness over one fixed (network × algorithm ×
/// assignment × adversary recipe × stop condition) combination.
///
/// See the [module documentation](self) for the sharing/reuse split and the
/// equivalence guarantee.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dradio_graphs::topology;
/// use dradio_sim::{
///     Action, Assignment, LinkFactory, Message, MessageKind, Process, ProcessContext,
///     ProcessFactory, RecordMode, Round, SimConfig, StaticLinks, StopCondition, TrialExecutor,
/// };
///
/// struct Beacon(Option<Message>);
/// impl Process for Beacon {
///     fn on_round(&mut self, _round: Round, _rng: &mut dyn rand::RngCore) -> Action {
///         match &self.0 {
///             Some(m) => Action::Transmit(m.clone()),
///             None => Action::Listen,
///         }
///     }
/// }
///
/// let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
///     let msg = (ctx.id.index() == 0).then(|| Message::plain(ctx.id, MessageKind::new(1), 7));
///     Box::new(Beacon(msg)) as Box<dyn Process>
/// });
/// let link: LinkFactory = Arc::new(|| Box::new(StaticLinks::none()));
/// let mut executor = TrialExecutor::new(
///     topology::star(5)?,
///     factory,
///     Assignment::relays(5),
///     link,
///     StopCondition::max_rounds(),
///     SimConfig::default().with_max_rounds(3),
/// )?;
/// for seed in 0..10 {
///     let outcome = executor.execute(seed, RecordMode::None);
///     assert_eq!(outcome.metrics.deliveries, 3 * 4); // 4 leaves hear the hub, 3 rounds
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TrialExecutor {
    dual: Arc<DualGraph>,
    factory: ProcessFactory,
    assignment: Assignment,
    config: SimConfig,
    link_factory: Option<LinkFactory>,
    link: Option<Box<dyn LinkProcess>>,
    /// Whether the stored link process has served an execution (a fresh one
    /// may be used as-is; a spent one must reset or be rebuilt).
    link_spent: bool,
    contexts: Vec<ProcessContext>,
    processes: Vec<Box<dyn Process>>,
    node_rngs: Vec<ChaCha8Rng>,
    adversary_rng: ChaCha8Rng,
    tracker: StopTracker,
    scratch: RoundScratch,
}

impl TrialExecutor {
    /// Builds an executor whose link process is created (and, when
    /// [`LinkProcess::reset`] declines, re-created) through `link_factory`.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyNetwork`] if the network has no nodes.
    /// * [`SimError::AssignmentSizeMismatch`] if `assignment` covers a
    ///   different number of nodes.
    /// * [`SimError::InvalidConfig`] if the configuration is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `stop` references nodes outside the network (a programming
    /// error in the experiment setup, not a runtime condition).
    pub fn new(
        dual: impl Into<Arc<DualGraph>>,
        factory: ProcessFactory,
        assignment: Assignment,
        link_factory: LinkFactory,
        stop: StopCondition,
        config: SimConfig,
    ) -> Result<Self> {
        let link = link_factory();
        Self::build(
            dual.into(),
            factory,
            assignment,
            Some(link_factory),
            link,
            stop,
            config,
        )
    }

    /// Builds a single-shot executor around an already-boxed link process
    /// ([`Simulator::run`](crate::Simulator::run) uses this); without a
    /// factory, only the first execution is guaranteed a rebuildable link.
    pub(crate) fn single_shot(
        dual: Arc<DualGraph>,
        factory: ProcessFactory,
        assignment: Assignment,
        link: Box<dyn LinkProcess>,
        stop: StopCondition,
        config: SimConfig,
    ) -> Result<Self> {
        Self::build(dual, factory, assignment, None, link, stop, config)
    }

    fn build(
        dual: Arc<DualGraph>,
        factory: ProcessFactory,
        assignment: Assignment,
        link_factory: Option<LinkFactory>,
        link: Box<dyn LinkProcess>,
        stop: StopCondition,
        config: SimConfig,
    ) -> Result<Self> {
        config.validate()?;
        let n = dual.len();
        if n == 0 {
            return Err(SimError::EmptyNetwork);
        }
        if assignment.len() != n {
            return Err(SimError::AssignmentSizeMismatch {
                network: n,
                assignment: assignment.len(),
            });
        }
        if let Some(max_index) = stop.max_node_index() {
            assert!(
                max_index < n,
                "stop condition references node {max_index} but the network has {n} nodes"
            );
        }
        let max_degree = dual.max_degree();
        let contexts: Vec<ProcessContext> = NodeId::all(n)
            .map(|u| ProcessContext::new(u, n, max_degree, assignment.role(u)))
            .collect();
        let scratch = RoundScratch::new(
            n,
            dual.g().row_words(),
            !dual.is_static(),
            dual.g().backend() == GraphBackend::Csr,
        );
        Ok(TrialExecutor {
            tracker: StopTracker::new(stop, n),
            dual,
            factory,
            assignment,
            config,
            link_factory,
            link: Some(link),
            link_spent: false,
            contexts,
            processes: Vec::with_capacity(n),
            node_rngs: Vec::with_capacity(n),
            adversary_rng: ChaCha8Rng::seed_from_u64(0),
            scratch,
        })
    }

    /// The network being simulated.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// The configuration in effect (its seed and record mode are superseded
    /// per execution by [`TrialExecutor::execute`]'s arguments).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs one independent execution from `seed`, retaining as much of it
    /// as `record_mode` asks for.
    ///
    /// Equivalent — outcome for outcome — to
    /// `Simulator::new(..., config.with_seed(seed).with_record_mode(record_mode))?.run(stop)`
    /// with the same components, but without re-copying the network,
    /// reallocating the per-round scratch, or reseeding streams from
    /// scratch-allocated state.
    pub fn execute(&mut self, seed: u64, record_mode: RecordMode) -> ExecutionOutcome {
        let n = self.dual.len();
        // Per-node and adversary streams, derived exactly as Simulator::new
        // derives them, reseeded in place.
        self.node_rngs
            .resize_with(n, || ChaCha8Rng::seed_from_u64(0));
        for (u, rng) in self.node_rngs.iter_mut().enumerate() {
            *rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed, u as u64));
        }
        self.adversary_rng = ChaCha8Rng::seed_from_u64(derive_stream_seed(seed, u64::MAX));
        // Fresh processes into the reused vector.
        self.processes.clear();
        for ctx in &self.contexts {
            self.processes.push((self.factory)(ctx));
        }
        // The link process: first use as built, afterwards reset-in-place or
        // rebuild from the recipe.
        let rebuild = |factory: &Option<LinkFactory>| {
            // lint: allow(D4) -- reachable only through TrialExecutor, whose
            // constructor always installs a link factory
            factory.as_ref().expect(
                "this executor has no link factory (single-shot construction) and its \
                 link process does not support reset, so it cannot run a second trial",
            )()
        };
        let mut link = match self.link.take() {
            Some(link) if !self.link_spent => link,
            Some(mut link) => {
                if link.reset() {
                    link
                } else {
                    rebuild(&self.link_factory)
                }
            }
            None => rebuild(&self.link_factory),
        };
        self.link_spent = true;
        self.tracker.reset();
        self.scratch.reset();
        let outcome = self.run_rounds(link.as_mut(), record_mode);
        self.link = Some(link);
        outcome
    }

    /// The round loop (shared verbatim by `Simulator::run`, which wraps a
    /// single-shot executor around its parts).
    fn run_rounds(
        &mut self,
        link: &mut dyn LinkProcess,
        record_mode: RecordMode,
    ) -> ExecutionOutcome {
        let n = self.dual.len();
        let horizon = self.config.max_rounds();
        let class = link.class();
        let adaptive = class != AdversaryClass::Oblivious;
        let offline = class == AdversaryClass::OfflineAdaptive;
        let mut recorder = Recorder::new(record_mode, class, n);
        let mut metrics = Metrics::default();
        let scratch = &mut self.scratch;

        // Start-of-execution hooks.
        {
            let setup = AdversarySetup {
                dual: &self.dual,
                factory: &self.factory,
                assignment: &self.assignment,
                horizon,
            };
            link.on_start(&setup, &mut self.adversary_rng);
        }
        for (i, process) in self.processes.iter_mut().enumerate() {
            process.on_start(&mut self.node_rngs[i]);
        }

        let mut completion_round = None;
        let mut rounds_executed = 0usize;

        if self.tracker.is_done() {
            // Degenerate conditions (e.g. empty receiver set) are complete
            // before any round executes.
            let record_mode = recorder.mode();
            let (history, collisions_per_round) = recorder.finish();
            return ExecutionOutcome {
                completed: true,
                rounds_executed: 0,
                completion_round: None,
                history,
                metrics,
                record_mode,
                collisions_per_round,
            };
        }

        // lint: hot-path
        for round in Round::range(horizon) {
            rounds_executed += 1;

            // 1. Expected behaviour (visible to adaptive adversaries) must be
            //    captured before any round-r coin is flipped.
            if adaptive {
                scratch.transmit_probs.clear();
                scratch
                    .transmit_probs
                    .extend(self.processes.iter().map(|p| p.transmit_probability(round)));
            }

            // 2. Processes pick their actions using their private coins.
            scratch.actions.clear();
            for (i, p) in self.processes.iter_mut().enumerate() {
                scratch
                    .actions
                    .push(p.on_round(round, &mut self.node_rngs[i]));
            }

            // 3. The link process fixes the dynamic edges, seeing only what
            //    its class entitles it to (the recorder's history is complete
            //    here: adaptive classes auto-promote to full recording).
            let decision = {
                let view = AdversaryView::new(
                    round,
                    n,
                    adaptive.then(|| recorder.history()),
                    adaptive.then_some(scratch.transmit_probs.as_slice()),
                    offline.then_some(scratch.actions.as_slice()),
                );
                link.decide(&view, &mut self.adversary_rng)
            };

            // Filter the decision down to genuine dynamic edges. The dynamic
            // adjacency bit rows double as an O(1) duplicate check.
            scratch.clear_dynamic();
            scratch.active_edges.clear();
            for edge in decision.edges() {
                let (u, v) = edge.endpoints();
                let is_dynamic =
                    self.dual.g_prime().has_edge(u, v) && !self.dual.g().has_edge(u, v);
                if !is_dynamic {
                    metrics.rejected_link_edges += 1;
                } else if !scratch.dynamic_bit(u, v) {
                    scratch.set_dynamic(u, v);
                    scratch.active_edges.push(*edge);
                }
            }

            // 4. Reception under the collision rule, from the packed
            //    transmitter bitset.
            scratch.transmitters.clear();
            scratch.transmitter_bits.iter_mut().for_each(|w| *w = 0);
            for (i, action) in scratch.actions.iter().enumerate() {
                if action.is_transmit() {
                    scratch.transmitter_bits[i / 64] |= 1u64 << (i % 64);
                    scratch.transmitters.push(NodeId::new(i));
                }
            }
            let transmitter_count = scratch.transmitters.len();
            metrics.transmissions += transmitter_count;

            scratch.feedbacks.clear();
            // Deliveries are materialized only under full recording; feedback
            // and stop evaluation never need the allocation.
            let mut deliveries: Vec<Delivery> = Vec::new(); // lint: allow(D3) -- Vec::new is allocation-free; pushes happen only under full recording
            let mut round_collisions = 0usize;

            if transmitter_count == 0 {
                // Nobody transmitted: every node listens into silence.
                metrics.idle_listens += n;
                for _ in 0..n {
                    scratch.feedbacks.push(Feedback::Silence);
                }
            } else {
                let g = self.dual.g();
                let words = g.row_words();
                let use_dynamic = !scratch.active_edges.is_empty();
                // Below this transmitter count, probing each transmitter with
                // O(1) bit queries beats scanning the whole adjacency row.
                let probe_transmitters = transmitter_count <= words;
                for u in NodeId::all(n) {
                    let u_idx = u.index();
                    if scratch.transmitter_bits[u_idx / 64] >> (u_idx % 64) & 1 == 1 {
                        scratch.feedbacks.push(Feedback::Transmitted);
                        continue;
                    }
                    // Count transmitting neighbors, capped at 2 (the collision
                    // rule only distinguishes 0 / 1 / "several"), picking the
                    // cheapest of three equivalent strategies per listener:
                    // walk the adjacency list testing transmitter bits (low
                    // degree), probe each transmitter with O(1) edge queries
                    // (few transmitters), or intersect the packed adjacency
                    // row with the transmitter bitset (dense rounds).
                    let mut count = 0usize;
                    let mut sender = 0usize;
                    let degree = g.degree(u);
                    if !use_dynamic && degree <= transmitter_count && degree <= words * 2 {
                        for &v in g.neighbors(u) {
                            let v_idx = v.index();
                            if scratch.transmitter_bits[v_idx / 64] >> (v_idx % 64) & 1 == 1 {
                                count += 1;
                                if count >= 2 {
                                    break;
                                }
                                sender = v_idx;
                            }
                        }
                    } else if probe_transmitters {
                        for &v in &scratch.transmitters {
                            let connected =
                                g.has_edge(u, v) || (use_dynamic && scratch.dynamic_bit(u, v));
                            if connected {
                                count += 1;
                                if count >= 2 {
                                    break;
                                }
                                sender = v.index();
                            }
                        }
                    } else {
                        match g.neighbor_row(u) {
                            NeighborRow::Dense(row) => {
                                let dyn_row = scratch.dynamic_row(u_idx);
                                for w in 0..words {
                                    let mut hit = row[w] & scratch.transmitter_bits[w];
                                    if use_dynamic {
                                        hit |= dyn_row[w] & scratch.transmitter_bits[w];
                                    }
                                    if hit != 0 {
                                        count += hit.count_ones() as usize;
                                        if count >= 2 {
                                            break;
                                        }
                                        sender = w * 64 + hit.trailing_zeros() as usize;
                                    }
                                }
                            }
                            NeighborRow::Sparse(row) => {
                                // CSR backend: walk the sorted static row (and
                                // the round's dynamic list, disjoint from it by
                                // the is_dynamic filter above) testing
                                // transmitter bits. Saturates at 2 like the
                                // word scan, and a unique sender is unique
                                // whichever order rows are visited in, so the
                                // outcome matches the dense strategies exactly.
                                for &v in row {
                                    let v_idx = v.index();
                                    if scratch.transmitter_bits[v_idx / 64] >> (v_idx % 64) & 1 == 1
                                    {
                                        count += 1;
                                        if count >= 2 {
                                            break;
                                        }
                                        sender = v_idx;
                                    }
                                }
                                if use_dynamic && count < 2 {
                                    for &v in scratch.dynamic_list(u_idx) {
                                        let v_idx = v.index();
                                        if scratch.transmitter_bits[v_idx / 64] >> (v_idx % 64) & 1
                                            == 1
                                        {
                                            count += 1;
                                            if count >= 2 {
                                                break;
                                            }
                                            sender = v_idx;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    let feedback = match count {
                        0 => {
                            metrics.idle_listens += 1;
                            Feedback::Silence
                        }
                        1 => {
                            let sender = NodeId::new(sender);
                            let message = scratch.actions[sender.index()]
                                .message()
                                // lint: allow(D4) -- the transmitter bitset is
                                // built from Transmit actions two steps above
                                .expect("a set transmitter bit implies a message");
                            metrics.deliveries += 1;
                            self.tracker.observe_one(u, sender, message.kind());
                            if recorder.wants_history() {
                                deliveries.push(Delivery {
                                    receiver: u,
                                    sender,
                                    message: message.clone(), // lint: allow(D3) -- full-recording path only
                                });
                            }
                            // lint: allow(D3) -- feedback owns its message; a
                            // broadcast message is a small copyable token
                            Feedback::Received(message.clone())
                        }
                        _ => {
                            metrics.collisions += 1;
                            round_collisions += 1;
                            if self.config.collision_detection() {
                                Feedback::Collision
                            } else {
                                Feedback::Silence
                            }
                        }
                    };
                    scratch.feedbacks.push(feedback);
                }
            }

            // 5. Deliver feedback to the processes.
            for (i, feedback) in scratch.feedbacks.iter().enumerate() {
                self.processes[i].on_feedback(round, feedback, &mut self.node_rngs[i]);
            }

            // 6. Record and evaluate the stop condition (already observed
            //    delivery by delivery, in ascending receiver order).
            recorder.push_collisions(round_collisions);
            if recorder.wants_history() {
                recorder.push(RoundRecord {
                    round,
                    transmitters: scratch.transmitters.clone(), // lint: allow(D3) -- full-recording path only
                    active_dynamic_edges: scratch.active_edges.clone(), // lint: allow(D3) -- full-recording path only
                    deliveries,
                });
            }
            metrics.rounds = rounds_executed;

            if self.tracker.is_done() {
                completion_round = Some(round);
                break;
            }
        }
        // lint: end-hot-path

        metrics.rounds = rounds_executed;
        let record_mode = recorder.mode();
        let (history, collisions_per_round) = recorder.finish();
        ExecutionOutcome {
            completed: completion_round.is_some(),
            rounds_executed,
            completion_round,
            history,
            metrics,
            record_mode,
            collisions_per_round,
        }
    }
}

impl std::fmt::Debug for TrialExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialExecutor")
            .field("n", &self.dual.len())
            .field("config", &self.config)
            .field("reusable_link", &self.link_factory.is_some())
            .finish()
    }
}

/// Reusable per-round working memory: every buffer is cleared, never
/// reallocated, between rounds, so the steady-state round loop performs no
/// heap allocation beyond what the processes themselves do (under
/// [`RecordMode::Full`], the retained round records are additionally built
/// per round, exactly as before the scratch existed).
///
/// The transmitter set is kept both as a sorted `Vec<NodeId>` (for history
/// records and transmitter probing) and as a packed `u64` bitset aligned
/// with [`dradio_graphs::Graph::neighbor_bits`], so reception resolves 64
/// candidate neighbors per word instead of chasing adjacency `Vec`s. Dynamic
/// edges activated by the link process live in equally packed per-node bit
/// rows; only rows actually touched in a round are cleared afterwards.
#[derive(Debug)]
struct RoundScratch {
    /// Per-node actions of the current round.
    actions: Vec<Action>,
    /// Per-node transmit probabilities (adaptive adversaries only).
    transmit_probs: Vec<f64>,
    /// Per-node end-of-round feedback.
    feedbacks: Vec<Feedback>,
    /// Transmitting nodes, ascending.
    transmitters: Vec<NodeId>,
    /// Packed transmitter bitset (bit `v` set iff node `v` transmits).
    transmitter_bits: Vec<u64>,
    /// Packed per-node dynamic adjacency rows for the current round
    /// (`words_per_row` words per node; empty when the network is static or
    /// the graph backend is CSR).
    dynamic_rows: Vec<u64>,
    /// Per-node dynamic adjacency *lists* for the current round — the CSR
    /// backend's O(n + active-edges) replacement for `dynamic_rows`, whose
    /// n × words bit matrix would itself be the quadratic allocation the
    /// sparse backend exists to avoid. Empty unless the network is dynamic
    /// *and* the backend is CSR.
    dynamic_lists: Vec<Vec<NodeId>>,
    /// Nodes whose dynamic row/list was written this round (cleared lazily).
    touched_rows: Vec<usize>,
    /// The deduplicated genuine dynamic edges of the current round.
    active_edges: Vec<Edge>,
    /// Words per packed row.
    words_per_row: usize,
}

impl RoundScratch {
    fn new(n: usize, words_per_row: usize, has_dynamic_edges: bool, sparse: bool) -> Self {
        RoundScratch {
            actions: Vec::with_capacity(n),
            transmit_probs: Vec::with_capacity(n),
            feedbacks: Vec::with_capacity(n),
            transmitters: Vec::with_capacity(n),
            transmitter_bits: vec![0u64; words_per_row],
            dynamic_rows: if has_dynamic_edges && !sparse {
                vec![0u64; n.saturating_mul(words_per_row)]
            } else {
                Vec::new()
            },
            dynamic_lists: if has_dynamic_edges && sparse {
                vec![Vec::new(); n]
            } else {
                Vec::new()
            },
            touched_rows: Vec::new(),
            active_edges: Vec::new(),
            words_per_row,
        }
    }

    /// Clears every buffer (keeping capacity) so the scratch can serve a new
    /// execution; within an execution the round loop clears incrementally.
    fn reset(&mut self) {
        self.actions.clear();
        self.transmit_probs.clear();
        self.feedbacks.clear();
        self.transmitters.clear();
        self.transmitter_bits.iter_mut().for_each(|w| *w = 0);
        self.clear_dynamic();
        self.active_edges.clear();
    }

    /// Zeroes the dynamic rows/lists touched by the previous round.
    fn clear_dynamic(&mut self) {
        if self.dynamic_lists.is_empty() {
            for &row in &self.touched_rows {
                let start = row * self.words_per_row;
                self.dynamic_rows[start..start + self.words_per_row].fill(0);
            }
        } else {
            for &row in &self.touched_rows {
                self.dynamic_lists[row].clear();
            }
        }
        self.touched_rows.clear();
    }

    /// Returns `true` if the dynamic edge `(u, v)` is active this round.
    fn dynamic_bit(&self, u: NodeId, v: NodeId) -> bool {
        if self.dynamic_lists.is_empty() {
            let idx = u.index() * self.words_per_row + v.index() / 64;
            self.dynamic_rows[idx] >> (v.index() % 64) & 1 == 1
        } else {
            // Dynamic lists stay tiny (one entry per active edge at u this
            // round), so the linear probe is cheaper than keeping them sorted.
            self.dynamic_lists[u.index()].contains(&v)
        }
    }

    /// Activates the dynamic edge `(u, v)` for this round.
    fn set_dynamic(&mut self, u: NodeId, v: NodeId) {
        let (ui, vi) = (u.index(), v.index());
        if self.dynamic_lists.is_empty() {
            self.dynamic_rows[ui * self.words_per_row + vi / 64] |= 1u64 << (vi % 64);
            self.dynamic_rows[vi * self.words_per_row + ui / 64] |= 1u64 << (ui % 64);
        } else {
            self.dynamic_lists[ui].push(v);
            self.dynamic_lists[vi].push(u);
        }
        self.touched_rows.push(ui);
        self.touched_rows.push(vi);
    }

    /// The packed dynamic adjacency row of node `u` (all zeroes when the
    /// network is static; unused — and empty — on the CSR backend, which
    /// reads [`dynamic_list`](RoundScratch::dynamic_list) instead).
    fn dynamic_row(&self, u: usize) -> &[u64] {
        if self.dynamic_rows.is_empty() {
            &[]
        } else {
            let start = u * self.words_per_row;
            &self.dynamic_rows[start..start + self.words_per_row]
        }
    }

    /// The dynamic neighbors activated at node `u` this round (empty when
    /// the network is static or the backend is dense).
    fn dynamic_list(&self, u: usize) -> &[NodeId] {
        if self.dynamic_lists.is_empty() {
            &[]
        } else {
            &self.dynamic_lists[u]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::StaticLinks;
    use crate::message::{Message, MessageKind};
    use crate::process::Role;
    use crate::Simulator;
    use dradio_graphs::topology;
    use rand::RngCore;

    const DATA: MessageKind = MessageKind::new(1);

    /// Source transmits with probability 1/2; relays stay silent.
    struct CoinBeacon {
        msg: Option<Message>,
    }

    impl Process for CoinBeacon {
        fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
            match &self.msg {
                Some(m) if crate::sampling::bernoulli(rng, 0.5) => Action::Transmit(m.clone()),
                _ => Action::Listen,
            }
        }
        fn transmit_probability(&self, _round: Round) -> f64 {
            if self.msg.is_some() {
                0.5
            } else {
                0.0
            }
        }
    }

    fn coin_factory() -> ProcessFactory {
        Arc::new(|ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Source).then(|| Message::plain(ctx.id, DATA, 7));
            Box::new(CoinBeacon { msg }) as Box<dyn Process>
        })
    }

    fn star_executor() -> TrialExecutor {
        let link: LinkFactory = Arc::new(|| Box::new(StaticLinks::none()));
        TrialExecutor::new(
            topology::star(6).unwrap(),
            coin_factory(),
            Assignment::global(6, NodeId::new(0)),
            link,
            StopCondition::global_broadcast(DATA, NodeId::new(0)),
            SimConfig::default().with_max_rounds(50),
        )
        .expect("executor builds")
    }

    fn star_simulator(seed: u64, mode: RecordMode) -> ExecutionOutcome {
        Simulator::new(
            topology::star(6).unwrap(),
            coin_factory(),
            Assignment::global(6, NodeId::new(0)),
            Box::new(StaticLinks::none()),
            SimConfig::default()
                .with_max_rounds(50)
                .with_seed(seed)
                .with_record_mode(mode),
        )
        .unwrap()
        .run(StopCondition::global_broadcast(DATA, NodeId::new(0)))
    }

    #[test]
    fn reused_executor_matches_fresh_simulators() {
        let mut executor = star_executor();
        for seed in 0..20u64 {
            for mode in [RecordMode::Full, RecordMode::None] {
                let reused = executor.execute(seed, mode);
                let fresh = star_simulator(seed, mode);
                assert_eq!(reused, fresh, "seed {seed} mode {mode} diverged");
            }
        }
        // Seed order does not matter either: re-running an earlier seed
        // reproduces its outcome exactly.
        let replay = executor.execute(3, RecordMode::Full);
        assert_eq!(replay, star_simulator(3, RecordMode::Full));
    }

    #[test]
    fn executor_validates_like_the_simulator() {
        let link: LinkFactory = Arc::new(|| Box::new(StaticLinks::none()));
        let err = TrialExecutor::new(
            topology::line(3).unwrap(),
            coin_factory(),
            Assignment::relays(2),
            link.clone(),
            StopCondition::max_rounds(),
            SimConfig::default(),
        )
        .expect_err("size mismatch must be rejected");
        assert!(matches!(err, SimError::AssignmentSizeMismatch { .. }));

        let err = TrialExecutor::new(
            topology::line(3).unwrap(),
            coin_factory(),
            Assignment::relays(3),
            link,
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(0),
        )
        .expect_err("zero horizon must be rejected");
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    #[should_panic(expected = "stop condition references node")]
    fn executor_rejects_out_of_range_stop_conditions() {
        let link: LinkFactory = Arc::new(|| Box::new(StaticLinks::none()));
        let _ = TrialExecutor::new(
            topology::line(3).unwrap(),
            coin_factory(),
            Assignment::relays(3),
            link,
            StopCondition::global_broadcast(DATA, NodeId::new(9)),
            SimConfig::default(),
        );
    }

    /// A link process that refuses to reset, counting its constructions.
    struct NoReset {
        _probe: Arc<()>,
    }
    impl LinkProcess for NoReset {
        fn class(&self) -> AdversaryClass {
            AdversaryClass::Oblivious
        }
        fn decide(
            &mut self,
            _view: &AdversaryView<'_>,
            _rng: &mut dyn RngCore,
        ) -> crate::link::LinkDecision {
            crate::link::LinkDecision::none()
        }
    }

    #[test]
    fn non_resettable_links_are_rebuilt_from_the_factory() {
        let probe = Arc::new(());
        let handle = Arc::clone(&probe);
        let link: LinkFactory = Arc::new(move || {
            Box::new(NoReset {
                _probe: Arc::clone(&handle),
            })
        });
        let mut executor = TrialExecutor::new(
            topology::line(4).unwrap(),
            coin_factory(),
            Assignment::global(4, NodeId::new(0)),
            link,
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(5),
        )
        .unwrap();
        // strong count: probe + factory capture + 1 live link instance.
        assert_eq!(Arc::strong_count(&probe), 3);
        let _ = executor.execute(1, RecordMode::None);
        let _ = executor.execute(2, RecordMode::None);
        // Still exactly one live instance: each trial's rebuild replaced it.
        assert_eq!(Arc::strong_count(&probe), 3);
    }

    #[test]
    fn resettable_links_are_reused_not_rebuilt() {
        let builds = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let counter = Arc::clone(&builds);
        let link: LinkFactory = Arc::new(move || {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Box::new(StaticLinks::all())
        });
        let mut executor = TrialExecutor::new(
            topology::dual_clique(6).unwrap(),
            coin_factory(),
            Assignment::global(6, NodeId::new(0)),
            link,
            StopCondition::max_rounds(),
            SimConfig::default().with_max_rounds(5),
        )
        .unwrap();
        for seed in 0..4 {
            let _ = executor.execute(seed, RecordMode::None);
        }
        assert_eq!(
            builds.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "a resettable link process is built exactly once"
        );
    }
}
