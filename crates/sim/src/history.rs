//! Execution histories.

use dradio_graphs::{Edge, NodeId};

use crate::message::{Message, MessageKind};
use crate::round::Round;

/// A single successful reception: `receiver` heard `message` from `sender`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The listening node that received the message.
    pub receiver: NodeId,
    /// The transmitting node it was received from.
    pub sender: NodeId,
    /// The message content.
    pub message: Message,
}

/// Everything that happened in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// The round this record describes.
    pub round: Round,
    /// Nodes that transmitted this round, in ascending order.
    pub transmitters: Vec<NodeId>,
    /// Dynamic edges the link process activated this round (after engine
    /// filtering).
    pub active_dynamic_edges: Vec<Edge>,
    /// Successful receptions this round.
    pub deliveries: Vec<Delivery>,
}

impl RoundRecord {
    /// Number of transmitting nodes.
    pub fn transmitter_count(&self) -> usize {
        self.transmitters.len()
    }
}

/// The complete record of an execution: one [`RoundRecord`] per executed
/// round, plus convenience queries used by stop conditions, adversaries, and
/// experiment analysis.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct History {
    n: usize,
    records: Vec<RoundRecord>,
}

impl History {
    /// Creates an empty history for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        History {
            n,
            records: Vec::new(),
        }
    }

    /// Number of nodes in the network the history describes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no round has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All round records in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The record of `round`, if it has been executed.
    pub fn record(&self, round: Round) -> Option<&RoundRecord> {
        self.records.get(round.index())
    }

    /// The most recently recorded round.
    pub fn last(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    /// Appends a round record (engine use).
    pub fn push(&mut self, record: RoundRecord) {
        debug_assert_eq!(
            record.round.index(),
            self.records.len(),
            "rounds must be recorded in order"
        );
        self.records.push(record);
    }

    /// Returns `true` if `node` has received at least one message of any
    /// kind.
    pub fn received_any(&self, node: NodeId) -> bool {
        self.records
            .iter()
            .any(|r| r.deliveries.iter().any(|d| d.receiver == node))
    }

    /// Returns `true` if `node` has received at least one message of `kind`.
    pub fn received_kind(&self, node: NodeId, kind: MessageKind) -> bool {
        self.records.iter().any(|r| {
            r.deliveries
                .iter()
                .any(|d| d.receiver == node && d.message.kind() == kind)
        })
    }

    /// First round in which `node` received a message of `kind`.
    pub fn first_reception(&self, node: NodeId, kind: MessageKind) -> Option<Round> {
        for record in &self.records {
            if record
                .deliveries
                .iter()
                .any(|d| d.receiver == node && d.message.kind() == kind)
            {
                return Some(record.round);
            }
        }
        None
    }

    /// Returns `true` if `node` has received a message (of any kind) from one
    /// of the listed `senders`.
    pub fn received_from(&self, node: NodeId, senders: &[NodeId]) -> bool {
        self.records.iter().any(|r| {
            r.deliveries
                .iter()
                .any(|d| d.receiver == node && senders.contains(&d.sender))
        })
    }

    /// Number of rounds in which `node` transmitted.
    pub fn transmissions_of(&self, node: NodeId) -> usize {
        self.records
            .iter()
            .filter(|r| r.transmitters.contains(&node))
            .count()
    }

    /// Total number of successful receptions across the execution.
    pub fn total_deliveries(&self) -> usize {
        self.records.iter().map(|r| r.deliveries.len()).sum()
    }

    /// All nodes that have received a message of `kind`, in ascending order.
    pub fn informed_nodes(&self, kind: MessageKind) -> Vec<NodeId> {
        let mut informed = vec![false; self.n];
        for record in &self.records {
            for d in &record.deliveries {
                if d.message.kind() == kind {
                    informed[d.receiver.index()] = true;
                }
            }
        }
        informed
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND_A: MessageKind = MessageKind::new(1);
    const KIND_B: MessageKind = MessageKind::new(2);

    fn delivery(receiver: usize, sender: usize, kind: MessageKind) -> Delivery {
        Delivery {
            receiver: NodeId::new(receiver),
            sender: NodeId::new(sender),
            message: Message::plain(NodeId::new(sender), kind, 0),
        }
    }

    fn sample_history() -> History {
        let mut h = History::new(4);
        h.push(RoundRecord {
            round: Round::new(0),
            transmitters: vec![NodeId::new(0)],
            active_dynamic_edges: vec![],
            deliveries: vec![delivery(1, 0, KIND_A)],
        });
        h.push(RoundRecord {
            round: Round::new(1),
            transmitters: vec![NodeId::new(1), NodeId::new(2)],
            active_dynamic_edges: vec![],
            deliveries: vec![delivery(3, 2, KIND_B)],
        });
        h
    }

    #[test]
    fn empty_history() {
        let h = History::new(3);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.node_count(), 3);
        assert!(h.last().is_none());
        assert!(!h.received_any(NodeId::new(0)));
        assert_eq!(h.total_deliveries(), 0);
    }

    #[test]
    fn push_and_query_records() {
        let h = sample_history();
        assert_eq!(h.len(), 2);
        assert_eq!(h.record(Round::new(0)).unwrap().transmitter_count(), 1);
        assert_eq!(h.record(Round::new(1)).unwrap().transmitter_count(), 2);
        assert!(h.record(Round::new(2)).is_none());
        assert_eq!(h.last().unwrap().round, Round::new(1));
    }

    #[test]
    fn reception_queries() {
        let h = sample_history();
        assert!(h.received_any(NodeId::new(1)));
        assert!(!h.received_any(NodeId::new(2)));
        assert!(h.received_kind(NodeId::new(1), KIND_A));
        assert!(!h.received_kind(NodeId::new(1), KIND_B));
        assert_eq!(
            h.first_reception(NodeId::new(3), KIND_B),
            Some(Round::new(1))
        );
        assert_eq!(h.first_reception(NodeId::new(3), KIND_A), None);
    }

    #[test]
    fn received_from_filters_senders() {
        let h = sample_history();
        assert!(h.received_from(NodeId::new(3), &[NodeId::new(2)]));
        assert!(!h.received_from(NodeId::new(3), &[NodeId::new(0)]));
        assert!(!h.received_from(NodeId::new(0), &[NodeId::new(2)]));
    }

    #[test]
    fn transmission_counts() {
        let h = sample_history();
        assert_eq!(h.transmissions_of(NodeId::new(0)), 1);
        assert_eq!(h.transmissions_of(NodeId::new(1)), 1);
        assert_eq!(h.transmissions_of(NodeId::new(3)), 0);
    }

    #[test]
    fn informed_nodes_by_kind() {
        let h = sample_history();
        assert_eq!(h.informed_nodes(KIND_A), vec![NodeId::new(1)]);
        assert_eq!(h.informed_nodes(KIND_B), vec![NodeId::new(3)]);
        assert_eq!(h.total_deliveries(), 2);
    }
}
