//! Synchronous dual-graph radio network execution engine.
//!
//! This crate implements the execution model of Section 2 of Ghaffari, Lynch
//! and Newport (PODC 2013):
//!
//! * An algorithm is a collection of `n` randomized [`Process`]es, one per
//!   node of a [`DualGraph`](dradio_graphs::DualGraph).
//! * An execution proceeds in synchronous [`Round`]s. Each round every
//!   process chooses an [`Action`]: transmit a [`Message`] or listen.
//! * A [`LinkProcess`] (the adversary) selects which unreliable `G' \ G`
//!   edges are present this round; the round topology is `G` plus that
//!   selection.
//! * Reception follows the collision rule: a listening node receives a
//!   message if and only if **exactly one** of its neighbors in the round
//!   topology transmits. Otherwise it observes silence (there is no collision
//!   detection unless explicitly enabled for diagnostics).
//! * The three classic adversary capability classes — oblivious, online
//!   adaptive, and offline adaptive — are enforced *structurally*: the
//!   engine only exposes to the link process the information its declared
//!   [`AdversaryClass`] is entitled to see.
//!
//! The [`Simulator`] drives executions, records a complete [`History`],
//! gathers [`Metrics`], and evaluates [`StopCondition`]s such as "global
//! broadcast is complete".
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dradio_graphs::topology;
//! use dradio_sim::{
//!     Action, Assignment, Message, MessageKind, Process, ProcessContext, Role, Round,
//!     SimConfig, Simulator, StopCondition, StaticLinks,
//! };
//! use rand::RngCore;
//!
//! // A toy process: the source transmits its message every round, everyone
//! // else listens.
//! struct Shout { msg: Option<Message> }
//! impl Process for Shout {
//!     fn on_round(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Action {
//!         match &self.msg {
//!             Some(m) => Action::Transmit(m.clone()),
//!             None => Action::Listen,
//!         }
//!     }
//! }
//!
//! let dual = topology::line(4)?;
//! let factory: dradio_sim::ProcessFactory = Arc::new(|ctx: &ProcessContext| {
//!     let msg = (ctx.role == Role::Source)
//!         .then(|| Message::plain(ctx.id, MessageKind::new(1), 42));
//!     Box::new(Shout { msg }) as Box<dyn Process>
//! });
//! let assignment = Assignment::global(4, 0.into());
//! let sim = Simulator::new(
//!     dual,
//!     factory,
//!     assignment,
//!     Box::new(StaticLinks::none()),
//!     SimConfig::default().with_seed(7).with_max_rounds(10),
//! )?;
//! let outcome = sim.run(StopCondition::max_rounds());
//! // The source's G-neighbor hears the message in round 1.
//! assert!(outcome.history.received_kind(1.into(), MessageKind::new(1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod batch;
pub mod bits;
pub mod config;
pub mod engine;
pub mod error;
pub mod executor;
pub mod history;
pub mod link;
pub mod message;
pub mod metrics;
pub mod process;
pub mod recorder;
pub mod round;
pub mod sampling;
pub mod stop;

pub use action::{Action, Feedback};
pub use batch::{BatchExecutor, MAX_LANES};
pub use bits::{BitReader, BitString};
pub use config::SimConfig;
pub use engine::{derive_stream_seed, ExecutionOutcome, Simulator};
pub use error::SimError;
pub use executor::{LinkFactory, TrialExecutor};
pub use history::{Delivery, History, RoundRecord};
pub use link::{
    AdversaryClass, AdversarySetup, AdversaryView, LinkDecision, LinkProcess, StaticLinks,
};
pub use message::{Message, MessageKind};
pub use metrics::{Metrics, TrialMetrics};
pub use process::{Assignment, BatchProfile, Process, ProcessContext, ProcessFactory, Role};
pub use recorder::{RecordMode, Recorder};
pub use round::Round;
pub use stop::StopCondition;

/// Convenient result alias for fallible simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;
