//! Link processes (adversaries) controlling the dynamic edges.

use std::fmt;
use std::sync::Arc;

use dradio_graphs::{DualGraph, Edge};
use rand::RngCore;

use crate::action::Action;
use crate::history::History;
use crate::process::{Assignment, ProcessFactory};
use crate::round::Round;

/// The three classic adversary capability classes of randomized analysis,
/// in increasing order of power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdversaryClass {
    /// Must fix all link behaviour before the execution begins; sees only the
    /// network, the algorithm, and the round number.
    Oblivious,
    /// Sees the execution history through the previous round (and the
    /// algorithm's expected behaviour), but not the current round's coins.
    OnlineAdaptive,
    /// Additionally sees the current round's actions before fixing the links.
    OfflineAdaptive,
}

impl fmt::Display for AdversaryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryClass::Oblivious => write!(f, "oblivious"),
            AdversaryClass::OnlineAdaptive => write!(f, "online-adaptive"),
            AdversaryClass::OfflineAdaptive => write!(f, "offline-adaptive"),
        }
    }
}

/// The set of dynamic (`E' \ E`) edges a link process activates for one
/// round.
///
/// The engine filters out any proposed edge that is not actually a dynamic
/// edge of the network (reliable edges are always present and cannot be
/// removed; edges outside `G'` cannot be added), counting such proposals in
/// the metrics so buggy adversaries are visible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkDecision {
    edges: Vec<Edge>,
}

impl LinkDecision {
    /// Activate no dynamic edges: the round topology is exactly `G`.
    pub fn none() -> Self {
        LinkDecision::default()
    }

    /// Activate every dynamic edge of `dual`: the round topology is `G'`.
    pub fn all_dynamic(dual: &DualGraph) -> Self {
        LinkDecision {
            edges: dual.dynamic_edges(),
        }
    }

    /// Activate exactly the given edges.
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        LinkDecision { edges }
    }

    /// The activated edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of activated edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no dynamic edge is activated.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Everything a link process may inspect before the execution begins: the
/// topology, the algorithm (process factory), the problem roles, the horizon,
/// and the simulation's collision-detection setting.
///
/// All three adversary classes receive this setup — "the network topology and
/// algorithm description" are known even to the oblivious adversary.
pub struct AdversarySetup<'a> {
    /// The dual graph being simulated, behind the engine's shared handle:
    /// adversaries that keep the network around across rounds should store
    /// `setup.dual.clone()` (an [`Arc`] bump), never a deep graph copy.
    pub dual: &'a Arc<DualGraph>,
    /// The algorithm under attack (so the adversary can pre-simulate it).
    pub factory: &'a ProcessFactory,
    /// The problem-level role assignment.
    pub assignment: &'a Assignment,
    /// Maximum number of rounds the execution may last.
    pub horizon: usize,
}

/// The per-round information a link process is entitled to see, scoped by its
/// [`AdversaryClass`].
///
/// The engine constructs the view: oblivious adversaries get only the round
/// number, online adaptive adversaries additionally get the [`History`]
/// through the previous round and the per-node transmit probabilities implied
/// by the algorithm's current state, and offline adaptive adversaries also
/// get the actual actions of the current round.
#[derive(Debug)]
pub struct AdversaryView<'a> {
    round: Round,
    n: usize,
    history: Option<&'a History>,
    transmit_probabilities: Option<&'a [f64]>,
    actions: Option<&'a [Action]>,
}

impl<'a> AdversaryView<'a> {
    /// Creates a view; intended for the engine and for adversary unit tests.
    pub fn new(
        round: Round,
        n: usize,
        history: Option<&'a History>,
        transmit_probabilities: Option<&'a [f64]>,
        actions: Option<&'a [Action]>,
    ) -> Self {
        AdversaryView {
            round,
            n,
            history,
            transmit_probabilities,
            actions,
        }
    }

    /// The round being decided.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Execution history through the previous round (adaptive classes only).
    pub fn history(&self) -> Option<&History> {
        self.history
    }

    /// Per-node probabilities of transmitting this round given the processes'
    /// current state (adaptive classes only).
    pub fn transmit_probabilities(&self) -> Option<&[f64]> {
        self.transmit_probabilities
    }

    /// The actual actions of this round (offline adaptive only).
    pub fn actions(&self) -> Option<&[Action]> {
        self.actions
    }

    /// Expected number of transmitters this round, `E[|X| | S]` in the
    /// notation of Theorem 3.1 (adaptive classes only).
    pub fn expected_transmitters(&self) -> Option<f64> {
        self.transmit_probabilities.map(|p| p.iter().sum())
    }
}

/// A link process: the adversary deciding, round by round, which dynamic
/// edges are present.
pub trait LinkProcess: Send {
    /// The capability class this adversary declares. The engine uses it to
    /// scope the [`AdversaryView`]; declaring a weaker class never grants
    /// more information.
    fn class(&self) -> AdversaryClass;

    /// Called once before round 0 with everything the adversary may
    /// pre-compute from.
    fn on_start(&mut self, _setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {}

    /// Chooses the dynamic edges for the round described by `view`.
    fn decide(&mut self, view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> LinkDecision;

    /// Restores the process to its just-constructed state so the same boxed
    /// value can serve another independent execution, returning `true` on
    /// success.
    ///
    /// [`TrialExecutor`](crate::TrialExecutor) calls this between trials; on
    /// `false` (the default) it rebuilds the process from its
    /// [`LinkFactory`](crate::LinkFactory) recipe instead — always correct,
    /// just one boxing per trial slower. The engine invokes
    /// [`LinkProcess::on_start`] at the beginning of *every* execution, so
    /// state that is unconditionally (re)initialized there needs no handling
    /// here; only return `true` if everything else is back to its
    /// post-construction value.
    fn reset(&mut self) -> bool {
        false
    }

    /// Short adversary name for traces and tables.
    fn name(&self) -> &'static str {
        "link-process"
    }
}

/// Built-in oblivious link process with fixed behaviour: activate either none
/// or all of the dynamic edges in every round.
///
/// `StaticLinks::none()` turns the dual graph model into the static protocol
/// model over `G`; `StaticLinks::all()` turns it into the protocol model over
/// `G'`. Both are useful baselines and test fixtures.
#[derive(Debug, Clone)]
pub struct StaticLinks {
    include_all: bool,
    cached: Vec<Edge>,
}

impl StaticLinks {
    /// Never activate dynamic edges (communication happens over `G` only).
    pub fn none() -> Self {
        StaticLinks {
            include_all: false,
            cached: Vec::new(),
        }
    }

    /// Activate every dynamic edge every round (communication over `G'`).
    pub fn all() -> Self {
        StaticLinks {
            include_all: true,
            cached: Vec::new(),
        }
    }
}

impl LinkProcess for StaticLinks {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
        if self.include_all {
            self.cached = setup.dual.dynamic_edges();
        }
    }

    fn decide(&mut self, _view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        if self.include_all {
            LinkDecision::from_edges(self.cached.clone())
        } else {
            LinkDecision::none()
        }
    }

    fn reset(&mut self) -> bool {
        // `cached` is rewritten by `on_start` whenever it is read.
        true
    }

    fn name(&self) -> &'static str {
        if self.include_all {
            "static-all"
        } else {
            "static-none"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_graphs::topology;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    use crate::process::ProcessContext;

    struct Dummy;
    impl crate::process::Process for Dummy {
        fn on_round(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Action {
            Action::Listen
        }
    }

    fn dummy_factory() -> ProcessFactory {
        Arc::new(|_ctx: &ProcessContext| Box::new(Dummy) as Box<dyn crate::process::Process>)
    }

    #[test]
    fn adversary_class_ordering_reflects_power() {
        assert!(AdversaryClass::Oblivious < AdversaryClass::OnlineAdaptive);
        assert!(AdversaryClass::OnlineAdaptive < AdversaryClass::OfflineAdaptive);
        assert_eq!(AdversaryClass::Oblivious.to_string(), "oblivious");
    }

    #[test]
    fn link_decision_constructors() {
        let dual = topology::dual_clique(8).unwrap();
        assert!(LinkDecision::none().is_empty());
        let all = LinkDecision::all_dynamic(&dual);
        assert_eq!(all.len(), dual.dynamic_edges().len());
        assert!(!all.is_empty());
    }

    #[test]
    fn view_exposes_only_what_it_is_given() {
        let view = AdversaryView::new(Round::new(3), 10, None, None, None);
        assert_eq!(view.round(), Round::new(3));
        assert_eq!(view.n(), 10);
        assert!(view.history().is_none());
        assert!(view.transmit_probabilities().is_none());
        assert!(view.actions().is_none());
        assert!(view.expected_transmitters().is_none());
    }

    #[test]
    fn expected_transmitters_sums_probabilities() {
        let probs = vec![0.5, 0.25, 0.0];
        let view = AdversaryView::new(Round::ZERO, 3, None, Some(&probs), None);
        assert!((view.expected_transmitters().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn static_links_decisions() {
        let dual = Arc::new(topology::dual_clique(8).unwrap());
        let factory = dummy_factory();
        let assignment = Assignment::relays(8);
        let setup = AdversarySetup {
            dual: &dual,
            factory: &factory,
            assignment: &assignment,
            horizon: 10,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);

        let mut none = StaticLinks::none();
        none.on_start(&setup, &mut rng);
        let view = AdversaryView::new(Round::ZERO, 8, None, None, None);
        assert!(none.decide(&view, &mut rng).is_empty());
        assert_eq!(none.name(), "static-none");

        let mut all = StaticLinks::all();
        all.on_start(&setup, &mut rng);
        assert_eq!(
            all.decide(&view, &mut rng).len(),
            dual.dynamic_edges().len()
        );
        assert_eq!(all.name(), "static-all");
        assert_eq!(all.class(), AdversaryClass::Oblivious);
    }
}
