//! Messages exchanged over the radio network.

use std::fmt;

use dradio_graphs::NodeId;

use crate::bits::BitString;

/// Algorithm-defined tag distinguishing message types (payload vs. seed vs.
/// acknowledgement, etc.).
///
/// The simulator treats kinds opaquely; algorithm crates define constants for
/// the kinds they use and completion predicates select deliveries by kind.
///
/// # Example
///
/// ```
/// use dradio_sim::MessageKind;
/// const DATA: MessageKind = MessageKind::new(1);
/// assert_eq!(DATA.value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageKind(u16);

impl MessageKind {
    /// Creates a message kind from a raw tag.
    pub const fn new(value: u16) -> Self {
        MessageKind(value)
    }

    /// Returns the raw tag.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kind{}", self.0)
    }
}

/// A radio message.
///
/// Messages carry: the node that *originated* the content (not necessarily
/// the current transmitter), an algorithm-defined [`MessageKind`], a small
/// integer payload, and an optional [`BitString`] of coordination bits (the
/// permuted-decay permutation bits or a local broadcast seed).
///
/// Messages are cheap to clone: the bit string is reference counted.
///
/// # Example
///
/// ```
/// use dradio_sim::{BitString, Message, MessageKind};
/// use dradio_graphs::NodeId;
/// let m = Message::plain(NodeId::new(0), MessageKind::new(2), 99);
/// assert_eq!(m.payload(), 99);
/// assert!(m.bits().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Message {
    source: NodeId,
    kind: MessageKind,
    payload: u64,
    bits: BitString,
}

impl Message {
    /// Creates a message with no attached bit string.
    pub fn plain(source: NodeId, kind: MessageKind, payload: u64) -> Self {
        Message {
            source,
            kind,
            payload,
            bits: BitString::empty(),
        }
    }

    /// Creates a message carrying coordination bits.
    pub fn with_bits(source: NodeId, kind: MessageKind, payload: u64, bits: BitString) -> Self {
        Message {
            source,
            kind,
            payload,
            bits,
        }
    }

    /// The node that originated the message content.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The algorithm-defined message kind.
    pub fn kind(&self) -> MessageKind {
        self.kind
    }

    /// The integer payload.
    pub fn payload(&self) -> u64 {
        self.payload
    }

    /// The attached coordination bits (possibly empty).
    pub fn bits(&self) -> &BitString {
        &self.bits
    }

    /// Returns a copy of this message re-originated by `source` (used when a
    /// relaying algorithm wants to track who forwarded the content).
    pub fn reoriginated(&self, source: NodeId) -> Message {
        Message {
            source,
            ..self.clone()
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msg[{} from {} payload={} bits={}]",
            self.kind,
            self.source,
            self.payload,
            self.bits.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn plain_message_has_no_bits() {
        let m = Message::plain(NodeId::new(3), MessageKind::new(7), 12);
        assert_eq!(m.source(), NodeId::new(3));
        assert_eq!(m.kind(), MessageKind::new(7));
        assert_eq!(m.payload(), 12);
        assert!(m.bits().is_empty());
    }

    #[test]
    fn with_bits_preserves_bits() {
        let bits = BitString::random(100, &mut ChaCha8Rng::seed_from_u64(1));
        let m = Message::with_bits(NodeId::new(0), MessageKind::new(1), 0, bits.clone());
        assert_eq!(m.bits(), &bits);
    }

    #[test]
    fn reoriginated_changes_only_source() {
        let bits = BitString::random(10, &mut ChaCha8Rng::seed_from_u64(2));
        let m = Message::with_bits(NodeId::new(0), MessageKind::new(5), 77, bits.clone());
        let r = m.reoriginated(NodeId::new(9));
        assert_eq!(r.source(), NodeId::new(9));
        assert_eq!(r.kind(), m.kind());
        assert_eq!(r.payload(), m.payload());
        assert_eq!(r.bits(), &bits);
    }

    #[test]
    fn equality_is_structural() {
        let a = Message::plain(NodeId::new(1), MessageKind::new(2), 3);
        let b = Message::plain(NodeId::new(1), MessageKind::new(2), 3);
        let c = Message::plain(NodeId::new(1), MessageKind::new(2), 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_mentions_kind_and_source() {
        let m = Message::plain(NodeId::new(4), MessageKind::new(2), 5);
        let shown = m.to_string();
        assert!(shown.contains("kind2"));
        assert!(shown.contains("v4"));
    }
}
