//! Execution metrics.

use std::fmt;

/// Aggregate counters collected during an execution.
///
/// These complement the full [`History`](crate::History): experiments that
/// only need totals (energy proxies, contention levels) can read them without
/// walking the per-round records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Rounds executed.
    pub rounds: usize,
    /// Total transmissions over all nodes and rounds.
    pub transmissions: usize,
    /// Total successful receptions.
    pub deliveries: usize,
    /// Listener-rounds in which two or more neighbors transmitted (a
    /// collision, observed as silence by the node unless collision detection
    /// is enabled).
    pub collisions: usize,
    /// Listener-rounds in which no neighbor transmitted.
    pub idle_listens: usize,
    /// Edges proposed by the link process that were not dynamic edges of the
    /// network and were therefore ignored by the engine.
    pub rejected_link_edges: usize,
}

impl Metrics {
    /// Average transmissions per executed round.
    pub fn transmissions_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.transmissions as f64 / self.rounds as f64
        }
    }

    /// Fraction of listener-rounds with a collision, out of all
    /// listener-rounds that had at least one transmitting neighbor.
    pub fn collision_rate(&self) -> f64 {
        let contended = self.collisions + self.deliveries;
        if contended == 0 {
            0.0
        } else {
            self.collisions as f64 / contended as f64
        }
    }
}

/// The typed per-trial measurement an execution boils down to: what the
/// layers above the engine (scenario trials, campaign cells, analysis
/// tables) aggregate.
///
/// Extracted from an [`ExecutionOutcome`](crate::ExecutionOutcome) via
/// [`ExecutionOutcome::trial_metrics`](crate::ExecutionOutcome::trial_metrics)
/// or [`into_trial_metrics`](crate::ExecutionOutcome::into_trial_metrics).
/// Unlike the outcome it never carries a [`History`](crate::History), so it
/// is cheap to move through trial fan-outs; the optional per-round collision
/// curve is present exactly when the effective
/// [`RecordMode`](crate::RecordMode) retained one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrialMetrics {
    /// Rounds until completion, or the executed horizon for a censored
    /// (timed-out) trial — the measured *cost*
    /// ([`ExecutionOutcome::cost`](crate::ExecutionOutcome::cost)).
    pub rounds: usize,
    /// Whether the stop condition was met within the round budget.
    pub completed: bool,
    /// Total collisions observed over the whole execution (identical under
    /// every record mode).
    pub collisions: usize,
    /// Collisions per executed round, when the effective record mode
    /// retained them ([`RecordMode::records_collisions`]); `None` under
    /// [`RecordMode::None`].
    ///
    /// [`RecordMode::records_collisions`]: crate::RecordMode::records_collisions
    /// [`RecordMode::None`]: crate::RecordMode::None
    pub collisions_per_round: Option<Vec<usize>>,
}

impl TrialMetrics {
    /// The same metrics without the per-round curve (what scalar aggregation
    /// paths keep per trial; curves are streamed into aggregates instead of
    /// being retained trial by trial).
    pub fn without_curve(&self) -> TrialMetrics {
        TrialMetrics {
            rounds: self.rounds,
            completed: self.completed,
            collisions: self.collisions,
            collisions_per_round: None,
        }
    }
}

impl fmt::Display for TrialMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} completed={} collisions={}{}",
            self.rounds,
            self.completed,
            self.collisions,
            match &self.collisions_per_round {
                Some(curve) => format!(" curve[{}]", curve.len()),
                None => String::new(),
            }
        )
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rounds={} tx={} rx={} collisions={} idle={} rejected-edges={}",
            self.rounds,
            self.transmissions,
            self.deliveries,
            self.collisions,
            self.idle_listens,
            self.rejected_link_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let m = Metrics::default();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.transmissions_per_round(), 0.0);
        assert_eq!(m.collision_rate(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let m = Metrics {
            rounds: 10,
            transmissions: 25,
            deliveries: 5,
            collisions: 15,
            idle_listens: 2,
            rejected_link_edges: 0,
        };
        assert!((m.transmissions_per_round() - 2.5).abs() < 1e-12);
        assert!((m.collision_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn trial_metrics_without_curve_drops_only_the_curve() {
        let with_curve = TrialMetrics {
            rounds: 7,
            completed: true,
            collisions: 5,
            collisions_per_round: Some(vec![1, 0, 4, 0, 0, 0, 0]),
        };
        let stripped = with_curve.without_curve();
        assert_eq!(stripped.rounds, 7);
        assert!(stripped.completed);
        assert_eq!(stripped.collisions, 5);
        assert_eq!(stripped.collisions_per_round, None);
        assert!(with_curve.to_string().contains("curve[7]"));
        assert!(!stripped.to_string().contains("curve"));
    }

    #[test]
    fn display_mentions_all_counters() {
        let m = Metrics {
            rounds: 1,
            transmissions: 2,
            deliveries: 3,
            collisions: 4,
            idle_listens: 5,
            rejected_link_edges: 6,
        };
        let s = m.to_string();
        for needle in [
            "rounds=1",
            "tx=2",
            "rx=3",
            "collisions=4",
            "idle=5",
            "rejected-edges=6",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
