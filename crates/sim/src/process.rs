//! Node processes (the randomized algorithms) and role assignments.

use std::fmt;
use std::sync::Arc;

use dradio_graphs::NodeId;
use rand::RngCore;

use crate::action::{Action, Feedback};
use crate::message::Message;
use crate::round::Round;

/// The problem-level role a node plays in an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Role {
    /// The designated source of a global broadcast.
    Source,
    /// A member of the broadcaster set `B` of a local broadcast.
    Broadcaster,
    /// Any other node.
    #[default]
    Relay,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Source => write!(f, "source"),
            Role::Broadcaster => write!(f, "broadcaster"),
            Role::Relay => write!(f, "relay"),
        }
    }
}

/// Static knowledge available to a process when it is instantiated.
///
/// Matching the paper's model (Section 2), a process knows the network size
/// `n`, the maximum degree `Δ` of `G'`, its own identifier, and its role —
/// but *not* the topology or the identities of its neighbors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessContext {
    /// This node's identifier.
    pub id: NodeId,
    /// Number of nodes in the network.
    pub n: usize,
    /// Maximum degree `Δ` of the unreliable layer `G'`.
    pub max_degree: usize,
    /// Problem-level role of this node.
    pub role: Role,
}

impl ProcessContext {
    /// Creates a context.
    pub fn new(id: NodeId, n: usize, max_degree: usize, role: Role) -> Self {
        ProcessContext {
            id,
            n,
            max_degree,
            role,
        }
    }

    /// `⌈log₂ n⌉`, the quantity written `log n` throughout the paper, with a
    /// minimum of 1 so probabilities like `2^{-i}` stay well defined for tiny
    /// networks.
    pub fn log_n(&self) -> usize {
        log2_ceil(self.n).max(1)
    }

    /// `⌈log₂ Δ⌉` with a minimum of 1.
    pub fn log_delta(&self) -> usize {
        log2_ceil(self.max_degree.max(2)).max(1)
    }
}

/// Ceiling of `log₂ x` (0 for `x ≤ 1`).
pub fn log2_ceil(x: usize) -> usize {
    if x <= 1 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as usize
    }
}

/// A randomized node process.
///
/// One boxed `Process` is created per node by the [`ProcessFactory`] at the
/// start of an execution. Each round the engine calls [`Process::on_round`]
/// to obtain the node's action and later [`Process::on_feedback`] with what
/// the node observed. All randomness must be drawn from the supplied `rng`
/// (a per-node deterministic stream), never from global state — this is what
/// makes executions reproducible and what lets the engine enforce the
/// adversary capability classes.
pub trait Process: Send {
    /// Called once before round 0.
    fn on_start(&mut self, _rng: &mut dyn RngCore) {}

    /// Decides the action for `round`.
    fn on_round(&mut self, round: Round, rng: &mut dyn RngCore) -> Action;

    /// Observes the outcome of `round`.
    fn on_feedback(&mut self, _round: Round, _feedback: &Feedback, _rng: &mut dyn RngCore) {}

    /// The probability (given the process's current state, before drawing
    /// this round's coins) that [`Process::on_round`] will transmit in
    /// `round`.
    ///
    /// Adaptive adversaries are allowed to know the algorithm and the
    /// execution history, and therefore this expectation; the online adaptive
    /// attacker of Theorem 3.1 is built on it. Processes with deterministic
    /// behaviour can rely on the default implementation only if they never
    /// transmit; randomized processes should override it.
    fn transmit_probability(&self, _round: Round) -> f64 {
        0.0
    }

    /// Whether this process currently holds the broadcast message (used by
    /// diagnostics; completion predicates use the delivery history instead).
    fn is_informed(&self) -> bool {
        false
    }

    /// Short algorithm name for traces and tables.
    fn name(&self) -> &'static str {
        "process"
    }

    /// How the bit-sliced [`BatchExecutor`](crate::BatchExecutor) may drive
    /// this process. The default, [`BatchProfile::Generic`], is always
    /// correct: the batch engine runs one boxed process per lane exactly as
    /// the scalar path does. A process whose whole behaviour is "flip one
    /// coin per round, transmit a fixed message on success" can return
    /// [`BatchProfile::FixedRate`] to opt into the word-parallel kernel.
    ///
    /// # Contract for `FixedRate { rate, message }`
    ///
    /// * [`Process::on_round`] draws coins exactly like
    ///   [`sampling::bernoulli(rng, rate)`](crate::sampling::bernoulli) —
    ///   one `next_u64` per round for `0 < rate < 1`, none otherwise — and
    ///   transmits a clone of `message` on success.
    /// * [`Process::on_start`] and [`Process::on_feedback`] draw nothing and
    ///   change nothing observable; the process is stateless across rounds.
    /// * The profile must not depend on anything but the
    ///   [`ProcessContext`] the factory saw (it is probed once per batch).
    ///
    /// Violating the contract silently desynchronizes batch and scalar
    /// outcomes; the equivalence suite exists to catch exactly that.
    fn batch_profile(&self) -> BatchProfile {
        BatchProfile::Generic
    }
}

/// How the batch executor may drive a process (see
/// [`Process::batch_profile`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum BatchProfile {
    /// No structure assumed: the batch engine runs one boxed process per
    /// lane, byte-for-byte like the scalar executor.
    #[default]
    Generic,
    /// The process transmits a fixed message with a fixed per-round
    /// probability and ignores feedback, so transmit decisions for 64 lanes
    /// collapse to one threshold compare per random word.
    FixedRate {
        /// Per-round transmit probability (clamped semantics of
        /// [`sampling::bernoulli`](crate::sampling::bernoulli)).
        rate: f64,
        /// The message transmitted on success. `None` is only meaningful
        /// when `rate <= 0.0` (the process never transmits); a positive
        /// rate with no message falls back to [`BatchProfile::Generic`].
        message: Option<Message>,
    },
}

/// Factory creating one process per node at execution start.
///
/// The factory is shared with *oblivious* link processes (the adversary knows
/// the algorithm) so constructions such as the bracelet attacker of Theorem
/// 4.3 can pre-simulate node behaviour before the execution begins.
pub type ProcessFactory = Arc<dyn Fn(&ProcessContext) -> Box<dyn Process> + Send + Sync>;

/// Assignment of problem-level [`Role`]s to nodes.
///
/// # Example
///
/// ```
/// use dradio_sim::{Assignment, Role};
/// use dradio_graphs::NodeId;
/// let a = Assignment::global(4, NodeId::new(2));
/// assert_eq!(a.role(NodeId::new(2)), Role::Source);
/// assert_eq!(a.role(NodeId::new(0)), Role::Relay);
/// assert_eq!(a.broadcasters().len(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    roles: Vec<Role>,
}

impl Assignment {
    /// All nodes are relays (no designated broadcasters); useful for running
    /// subroutines in isolation.
    pub fn relays(n: usize) -> Self {
        Assignment {
            roles: vec![Role::Relay; n],
        }
    }

    /// Global broadcast: `source` is the source, everyone else a relay.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn global(n: usize, source: NodeId) -> Self {
        assert!(
            source.index() < n,
            "source {source} out of range for n = {n}"
        );
        let mut roles = vec![Role::Relay; n];
        roles[source.index()] = Role::Source;
        Assignment { roles }
    }

    /// Local broadcast: every node in `broadcasters` is a broadcaster,
    /// everyone else a relay.
    ///
    /// # Panics
    ///
    /// Panics if any broadcaster is out of range.
    pub fn local(n: usize, broadcasters: &[NodeId]) -> Self {
        let mut roles = vec![Role::Relay; n];
        for &b in broadcasters {
            assert!(b.index() < n, "broadcaster {b} out of range for n = {n}");
            roles[b.index()] = Role::Broadcaster;
        }
        Assignment { roles }
    }

    /// Creates an assignment from an explicit role vector.
    pub fn from_roles(roles: Vec<Role>) -> Self {
        Assignment { roles }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Returns `true` if the assignment covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Role of `node` (relay for out-of-range queries).
    pub fn role(&self, node: NodeId) -> Role {
        self.roles.get(node.index()).copied().unwrap_or_default()
    }

    /// The source node, if exactly one node has the source role.
    pub fn source(&self) -> Option<NodeId> {
        let sources: Vec<NodeId> = self
            .roles
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == Role::Source)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        match sources.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// All nodes with the broadcaster role, in ascending order.
    pub fn broadcasters(&self) -> Vec<NodeId> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == Role::Broadcaster)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Iterates over `(node, role)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Role)> + '_ {
        self.roles
            .iter()
            .enumerate()
            .map(|(i, &r)| (NodeId::new(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn context_logs_have_minimum_one() {
        let ctx = ProcessContext::new(NodeId::new(0), 1, 0, Role::Relay);
        assert_eq!(ctx.log_n(), 1);
        assert_eq!(ctx.log_delta(), 1);
        let big = ProcessContext::new(NodeId::new(0), 256, 16, Role::Relay);
        assert_eq!(big.log_n(), 8);
        assert_eq!(big.log_delta(), 4);
    }

    #[test]
    fn global_assignment_places_single_source() {
        let a = Assignment::global(5, NodeId::new(3));
        assert_eq!(a.source(), Some(NodeId::new(3)));
        assert_eq!(a.role(NodeId::new(3)), Role::Source);
        assert_eq!(a.iter().filter(|(_, r)| *r == Role::Source).count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn global_assignment_rejects_bad_source() {
        let _ = Assignment::global(3, NodeId::new(3));
    }

    #[test]
    fn local_assignment_marks_broadcasters() {
        let b = [NodeId::new(0), NodeId::new(2)];
        let a = Assignment::local(4, &b);
        assert_eq!(a.broadcasters(), b.to_vec());
        assert_eq!(a.source(), None);
        assert_eq!(a.role(NodeId::new(1)), Role::Relay);
    }

    #[test]
    fn relays_assignment_is_uniform() {
        let a = Assignment::relays(3);
        assert!(a.iter().all(|(_, r)| r == Role::Relay));
        assert!(!a.is_empty());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn out_of_range_role_defaults_to_relay() {
        let a = Assignment::global(3, NodeId::new(0));
        assert_eq!(a.role(NodeId::new(99)), Role::Relay);
    }

    #[test]
    fn role_display() {
        assert_eq!(Role::Source.to_string(), "source");
        assert_eq!(Role::Broadcaster.to_string(), "broadcaster");
        assert_eq!(Role::Relay.to_string(), "relay");
    }
}
