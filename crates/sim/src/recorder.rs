//! Pluggable history recording for the execution engine.
//!
//! Most consumers of an execution never read its [`History`]: a scenario
//! trial keeps only the cost, completion flag, and collision count, yet the
//! engine would happily clone every delivered [`Message`](crate::Message)
//! into per-round records nobody looks at. [`RecordMode`] lets the caller
//! declare up front what the execution's history is *for*, and the
//! [`Recorder`] skips everything the declared consumer does not demand.
//!
//! # The auto-promotion rule
//!
//! Adaptive link processes are entitled to see the execution history through
//! the previous round ([`AdversaryView::history`](crate::AdversaryView)), so
//! an execution against an [`AdversaryClass::OnlineAdaptive`] or
//! [`AdversaryClass::OfflineAdaptive`] adversary **must** retain full
//! history regardless of what the caller asked for. The recorder therefore
//! promotes itself to [`RecordMode::Full`] whenever the adversary class is
//! not [`AdversaryClass::Oblivious`]; the requested and effective modes are
//! both observable, and behaviour (every coin flip, every delivery, every
//! metric) is identical across modes — only what is *retained* differs.

use crate::history::{History, RoundRecord};
use crate::link::AdversaryClass;

/// How much of an execution the engine retains.
///
/// The measured quantities — [`Metrics`](crate::Metrics), completion, cost —
/// are identical under every mode; recording only changes what the returned
/// [`ExecutionOutcome`](crate::ExecutionOutcome) carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecordMode {
    /// Keep the complete per-round [`History`] (every transmitter list,
    /// active dynamic edge, and delivered message), exactly as the engine
    /// always recorded it. The default.
    #[default]
    Full,
    /// Keep only a per-round collision count
    /// ([`ExecutionOutcome::collisions_per_round`](crate::ExecutionOutcome::collisions_per_round));
    /// no round records or message clones.
    CollisionsOnly,
    /// Keep nothing beyond the aggregate metrics: the returned history is
    /// empty. The fastest mode, intended for trial fan-out where only the
    /// [`Metrics`](crate::Metrics)-derived quantities are read.
    None,
}

serde::serde_enum!(RecordMode {
    Full,
    CollisionsOnly,
    None,
});

impl RecordMode {
    /// The mode an execution against an adversary of `class` actually runs
    /// with: adaptive classes force [`RecordMode::Full`] because the
    /// adversary's view borrows the history (see the
    /// [module documentation](self)).
    pub fn effective_for(self, class: AdversaryClass) -> RecordMode {
        if class == AdversaryClass::Oblivious {
            self
        } else {
            RecordMode::Full
        }
    }

    /// Returns `true` if this mode retains per-round [`RoundRecord`]s.
    pub fn records_history(self) -> bool {
        matches!(self, RecordMode::Full)
    }

    /// Returns `true` if this mode retains per-round collision counts.
    pub fn records_collisions(self) -> bool {
        !matches!(self, RecordMode::None)
    }
}

impl std::fmt::Display for RecordMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordMode::Full => write!(f, "full"),
            RecordMode::CollisionsOnly => write!(f, "collisions-only"),
            RecordMode::None => write!(f, "none"),
        }
    }
}

/// The engine's recording sink: accumulates whatever the effective
/// [`RecordMode`] retains and hands it back at the end of the run.
#[derive(Debug, Clone)]
pub struct Recorder {
    requested: RecordMode,
    effective: RecordMode,
    history: History,
    collisions_per_round: Vec<usize>,
}

impl Recorder {
    /// Creates a recorder for a network of `n` nodes, promoting `requested`
    /// to [`RecordMode::Full`] when `class` is adaptive.
    pub fn new(requested: RecordMode, class: AdversaryClass, n: usize) -> Self {
        let effective = requested.effective_for(class);
        Recorder {
            requested,
            effective,
            history: History::new(n),
            collisions_per_round: Vec::new(),
        }
    }

    /// The mode the caller asked for.
    pub fn requested(&self) -> RecordMode {
        self.requested
    }

    /// The mode in effect after auto-promotion.
    pub fn mode(&self) -> RecordMode {
        self.effective
    }

    /// Returns `true` if the engine must assemble full [`RoundRecord`]s.
    pub fn wants_history(&self) -> bool {
        self.effective.records_history()
    }

    /// The history recorded so far (empty unless the effective mode is
    /// [`RecordMode::Full`]); the engine lends it to adaptive adversaries.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Appends a fully assembled round record (effective mode
    /// [`RecordMode::Full`] only; a no-op otherwise, so callers may guard
    /// record assembly with [`Recorder::wants_history`] purely for speed).
    pub fn push(&mut self, record: RoundRecord) {
        if self.effective.records_history() {
            self.history.push(record);
        }
    }

    /// Appends one round's collision count (retained under
    /// [`RecordMode::Full`] and [`RecordMode::CollisionsOnly`]).
    pub fn push_collisions(&mut self, collisions: usize) {
        if self.effective.records_collisions() {
            self.collisions_per_round.push(collisions);
        }
    }

    /// Consumes the recorder, returning the retained history and per-round
    /// collision counts (either may be empty depending on the mode).
    pub fn finish(self) -> (History, Vec<usize>) {
        (self.history, self.collisions_per_round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::Round;

    fn record(round: usize) -> RoundRecord {
        RoundRecord {
            round: Round::new(round),
            transmitters: vec![],
            active_dynamic_edges: vec![],
            deliveries: vec![],
        }
    }

    #[test]
    fn default_mode_is_full() {
        assert_eq!(RecordMode::default(), RecordMode::Full);
        assert!(RecordMode::Full.records_history());
        assert!(RecordMode::Full.records_collisions());
        assert!(!RecordMode::CollisionsOnly.records_history());
        assert!(RecordMode::CollisionsOnly.records_collisions());
        assert!(!RecordMode::None.records_history());
        assert!(!RecordMode::None.records_collisions());
    }

    #[test]
    fn adaptive_classes_force_full_recording() {
        for mode in [
            RecordMode::Full,
            RecordMode::CollisionsOnly,
            RecordMode::None,
        ] {
            assert_eq!(mode.effective_for(AdversaryClass::Oblivious), mode);
            assert_eq!(
                mode.effective_for(AdversaryClass::OnlineAdaptive),
                RecordMode::Full
            );
            assert_eq!(
                mode.effective_for(AdversaryClass::OfflineAdaptive),
                RecordMode::Full
            );
        }
    }

    #[test]
    fn recorder_retains_by_effective_mode() {
        let mut full = Recorder::new(RecordMode::Full, AdversaryClass::Oblivious, 4);
        assert!(full.wants_history());
        full.push(record(0));
        full.push_collisions(3);
        let (history, collisions) = full.finish();
        assert_eq!(history.len(), 1);
        assert_eq!(collisions, vec![3]);

        let mut collisions_only =
            Recorder::new(RecordMode::CollisionsOnly, AdversaryClass::Oblivious, 4);
        assert!(!collisions_only.wants_history());
        collisions_only.push_collisions(2);
        let (history, collisions) = collisions_only.finish();
        assert!(history.is_empty());
        assert_eq!(collisions, vec![2]);

        let mut none = Recorder::new(RecordMode::None, AdversaryClass::Oblivious, 4);
        assert!(!none.wants_history());
        none.push_collisions(9);
        let (history, collisions) = none.finish();
        assert!(history.is_empty());
        assert!(collisions.is_empty());
    }

    #[test]
    fn recorder_promotes_for_adaptive_adversaries() {
        let promoted = Recorder::new(RecordMode::None, AdversaryClass::OnlineAdaptive, 4);
        assert_eq!(promoted.requested(), RecordMode::None);
        assert_eq!(promoted.mode(), RecordMode::Full);
        assert!(promoted.wants_history());
    }

    #[test]
    fn mode_round_trips_through_serde_and_displays() {
        use serde::{Deserialize, Serialize};
        for mode in [
            RecordMode::Full,
            RecordMode::CollisionsOnly,
            RecordMode::None,
        ] {
            assert_eq!(RecordMode::from_value(&mode.to_value()), Ok(mode));
        }
        assert_eq!(RecordMode::None.to_string(), "none");
        assert_eq!(RecordMode::CollisionsOnly.to_string(), "collisions-only");
        assert_eq!(RecordMode::Full.to_string(), "full");
    }
}
