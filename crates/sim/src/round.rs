//! Round counters.

use std::fmt;

/// A synchronous round number, starting at 0.
///
/// # Example
///
/// ```
/// use dradio_sim::Round;
/// let r = Round::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.next().index(), 6);
/// assert_eq!(format!("{r}"), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(usize);

impl Round {
    /// The first round of every execution.
    pub const ZERO: Round = Round(0);

    /// Creates a round counter from an index.
    pub const fn new(index: usize) -> Self {
        Round(index)
    }

    /// Returns the 0-based round index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// The round after this one.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Iterates over the rounds `0..horizon`.
    pub fn range(horizon: usize) -> impl Iterator<Item = Round> + Clone {
        (0..horizon).map(Round)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for Round {
    fn from(index: usize) -> Self {
        Round(index)
    }
}

impl From<Round> for usize {
    fn from(round: Round) -> Self {
        round.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_order() {
        assert_eq!(Round::new(3).index(), 3);
        assert!(Round::new(2) < Round::new(3));
        assert_eq!(Round::ZERO.index(), 0);
        assert_eq!(Round::default(), Round::ZERO);
    }

    #[test]
    fn next_increments() {
        assert_eq!(Round::ZERO.next(), Round::new(1));
        assert_eq!(Round::new(9).next().index(), 10);
    }

    #[test]
    fn range_covers_horizon() {
        let rounds: Vec<usize> = Round::range(4).map(Round::index).collect();
        assert_eq!(rounds, vec![0, 1, 2, 3]);
        assert_eq!(Round::range(0).count(), 0);
    }

    #[test]
    fn conversions() {
        let r: Round = 7usize.into();
        let back: usize = r.into();
        assert_eq!(back, 7);
        assert_eq!(r.to_string(), "r7");
    }
}
