//! Small sampling helpers over type-erased random number generators.
//!
//! Processes and link processes receive their randomness as `&mut dyn
//! RngCore`; these helpers provide the couple of distributions the broadcast
//! algorithms need without requiring the sized-only parts of the `Rng`
//! extension trait.

use rand::RngCore;

/// Draws a Bernoulli sample: returns `true` with probability `p`.
///
/// Values of `p` at or below 0 always return `false`; values at or above 1
/// always return `true` (and consume no randomness in either case).
///
/// # Example
///
/// ```
/// use dradio_sim::sampling::bernoulli;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// assert!(!bernoulli(&mut rng, 0.0));
/// assert!(bernoulli(&mut rng, 1.0));
/// ```
pub fn bernoulli(rng: &mut dyn RngCore, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    uniform_f64(rng) < p
}

/// Draws a uniform floating point value in `[0, 1)` with 53 bits of
/// precision.
pub fn uniform_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws a uniform index in `[0, bound)`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub fn uniform_index(rng: &mut dyn RngCore, bound: usize) -> usize {
    assert!(bound > 0, "bound must be positive");
    // Rejection-free modulo is fine here: bounds are tiny (≤ n) compared to
    // 2^64, so the bias is negligible for simulation purposes.
    (rng.next_u64() % bound as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bernoulli_extremes_are_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert!(!bernoulli(&mut rng, 0.0));
            assert!(!bernoulli(&mut rng, -1.0));
            assert!(bernoulli(&mut rng, 1.0));
            assert!(bernoulli(&mut rng, 2.0));
        }
    }

    #[test]
    fn bernoulli_matches_probability_empirically() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trials = 20_000;
        for &p in &[0.1, 0.5, 0.9] {
            let hits = (0..trials).filter(|_| bernoulli(&mut rng, p)).count();
            let rate = hits as f64 / trials as f64;
            assert!((rate - p).abs() < 0.02, "p = {p}, rate = {rate}");
        }
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = uniform_f64(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_index_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..2000 {
            let i = uniform_index(&mut rng, 7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_index_rejects_zero_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = uniform_index(&mut rng, 0);
    }
}
