//! Stop conditions: when an execution is considered complete.

use dradio_graphs::NodeId;

use crate::history::Delivery;
use crate::message::MessageKind;

/// The condition under which the engine stops before reaching the round
/// horizon.
///
/// Stop conditions are evaluated incrementally from each round's deliveries,
/// so checking them costs `O(deliveries)` per round rather than a scan of the
/// whole history.
#[derive(Debug, Clone, PartialEq)]
pub enum StopCondition {
    /// Never stop early: run until the configured horizon.
    MaxRounds,
    /// Stop when every node except the `exempt` ones has received a message
    /// of `kind` — the global broadcast completion criterion, with the source
    /// exempt because it never receives its own message.
    AllReceivedKind {
        /// The message kind that must be received.
        kind: MessageKind,
        /// Nodes that are not required to receive (typically the source).
        exempt: Vec<NodeId>,
    },
    /// Stop when each listed node has received a message of `kind`.
    NodesReceivedKind {
        /// The nodes that must receive.
        nodes: Vec<NodeId>,
        /// The message kind that must be received.
        kind: MessageKind,
    },
    /// Stop when each `receiver` has received at least one message (of any
    /// kind) sent by one of the `senders` — the local broadcast completion
    /// criterion with receivers `R` and broadcasters `B`.
    NodesReceivedFrom {
        /// The receiver set `R`.
        receivers: Vec<NodeId>,
        /// The sender set `B`.
        senders: Vec<NodeId>,
    },
    /// Stop when each `receiver` has received a message of `kind` sent by one
    /// of the `senders` — the local broadcast completion criterion restricted
    /// to payload messages, so auxiliary control traffic (e.g. seed
    /// dissemination) does not count as completion.
    NodesReceivedKindFrom {
        /// The receiver set `R`.
        receivers: Vec<NodeId>,
        /// The sender set `B`.
        senders: Vec<NodeId>,
        /// The message kind that must be received.
        kind: MessageKind,
    },
}

impl StopCondition {
    /// Run to the horizon.
    pub fn max_rounds() -> Self {
        StopCondition::MaxRounds
    }

    /// Global broadcast completion: everyone but `source` receives `kind`.
    pub fn global_broadcast(kind: MessageKind, source: NodeId) -> Self {
        StopCondition::AllReceivedKind {
            kind,
            exempt: vec![source],
        }
    }

    /// Local broadcast completion: every node in `receivers` hears some node
    /// in `senders`.
    pub fn local_broadcast(receivers: Vec<NodeId>, senders: Vec<NodeId>) -> Self {
        StopCondition::NodesReceivedFrom { receivers, senders }
    }

    /// Local broadcast completion restricted to messages of `kind`: every
    /// node in `receivers` hears a `kind` message from some node in
    /// `senders`.
    pub fn local_broadcast_kind(
        receivers: Vec<NodeId>,
        senders: Vec<NodeId>,
        kind: MessageKind,
    ) -> Self {
        StopCondition::NodesReceivedKindFrom {
            receivers,
            senders,
            kind,
        }
    }

    /// Largest node index referenced by the condition, used by the engine to
    /// validate the condition against the network size.
    pub fn max_node_index(&self) -> Option<usize> {
        let ids: Vec<usize> = match self {
            StopCondition::MaxRounds => Vec::new(),
            StopCondition::AllReceivedKind { exempt, .. } => {
                exempt.iter().map(|u| u.index()).collect()
            }
            StopCondition::NodesReceivedKind { nodes, .. } => {
                nodes.iter().map(|u| u.index()).collect()
            }
            StopCondition::NodesReceivedFrom { receivers, senders }
            | StopCondition::NodesReceivedKindFrom {
                receivers, senders, ..
            } => receivers
                .iter()
                .chain(senders.iter())
                .map(|u| u.index())
                .collect(),
        };
        ids.into_iter().max()
    }
}

/// Incremental evaluator for a [`StopCondition`] (engine use).
#[derive(Debug, Clone)]
pub struct StopTracker {
    condition: StopCondition,
    /// For conditions with a per-node requirement: which nodes are still
    /// waiting. `None` for `MaxRounds`.
    pending: Option<Vec<bool>>,
    pending_count: usize,
    n: usize,
}

impl StopTracker {
    /// Creates a tracker for a network of `n` nodes.
    pub fn new(condition: StopCondition, n: usize) -> Self {
        let mut tracker = StopTracker {
            condition,
            pending: None,
            pending_count: 0,
            n,
        };
        tracker.reset();
        tracker
    }

    /// Restores the tracker to its just-constructed state, reusing the
    /// pending buffer: [`TrialExecutor`](crate::TrialExecutor) calls this
    /// between trials instead of rebuilding the tracker.
    pub fn reset(&mut self) {
        let n = self.n;
        match &self.condition {
            StopCondition::MaxRounds => {
                self.pending = None;
                self.pending_count = 0;
            }
            StopCondition::AllReceivedKind { exempt, .. } => {
                let pending = Self::refill(&mut self.pending, n, true);
                for u in exempt {
                    if u.index() < n {
                        pending[u.index()] = false;
                    }
                }
                self.pending_count = pending.iter().filter(|&&p| p).count();
            }
            StopCondition::NodesReceivedKind { nodes, .. } => {
                let pending = Self::refill(&mut self.pending, n, false);
                for u in nodes {
                    if u.index() < n {
                        pending[u.index()] = true;
                    }
                }
                self.pending_count = pending.iter().filter(|&&p| p).count();
            }
            StopCondition::NodesReceivedFrom { receivers, .. }
            | StopCondition::NodesReceivedKindFrom { receivers, .. } => {
                let pending = Self::refill(&mut self.pending, n, false);
                for u in receivers {
                    if u.index() < n {
                        pending[u.index()] = true;
                    }
                }
                self.pending_count = pending.iter().filter(|&&p| p).count();
            }
        }
    }

    /// Fills the pending buffer with `value`, reusing its allocation.
    fn refill(slot: &mut Option<Vec<bool>>, n: usize, value: bool) -> &mut Vec<bool> {
        match slot {
            Some(pending) => {
                pending.clear();
                pending.resize(n, value);
                pending
            }
            None => slot.insert(vec![value; n]),
        }
    }

    /// Feeds the deliveries of one round into the tracker.
    pub fn observe(&mut self, deliveries: &[Delivery]) {
        for d in deliveries {
            self.observe_one(d.receiver, d.sender, d.message.kind());
        }
    }

    /// Feeds a single delivery into the tracker without requiring a
    /// materialized [`Delivery`]: the engine's fast path calls this with the
    /// `(receiver, sender, kind)` triple so stop evaluation never forces a
    /// message clone.
    pub fn observe_one(&mut self, receiver: NodeId, sender: NodeId, kind: MessageKind) {
        let Some(pending) = self.pending.as_mut() else {
            return;
        };
        let idx = receiver.index();
        if idx >= self.n || !pending[idx] {
            return;
        }
        let satisfied = match &self.condition {
            StopCondition::MaxRounds => false,
            StopCondition::AllReceivedKind { kind: want, .. }
            | StopCondition::NodesReceivedKind { kind: want, .. } => kind == *want,
            StopCondition::NodesReceivedFrom { senders, .. } => senders.contains(&sender),
            StopCondition::NodesReceivedKindFrom {
                senders,
                kind: want,
                ..
            } => kind == *want && senders.contains(&sender),
        };
        if satisfied {
            pending[idx] = false;
            self.pending_count -= 1;
        }
    }

    /// Returns `true` once the condition is satisfied. `MaxRounds` is never
    /// satisfied early.
    pub fn is_done(&self) -> bool {
        match self.condition {
            StopCondition::MaxRounds => false,
            _ => self.pending_count == 0,
        }
    }

    /// Number of nodes still waiting to satisfy their requirement.
    pub fn pending_count(&self) -> usize {
        self.pending_count
    }

    /// Nodes still waiting to satisfy their requirement, in ascending order.
    pub fn pending_nodes(&self) -> Vec<NodeId> {
        match &self.pending {
            None => Vec::new(),
            Some(p) => p
                .iter()
                .enumerate()
                .filter(|(_, &waiting)| waiting)
                .map(|(i, _)| NodeId::new(i))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    const KIND: MessageKind = MessageKind::new(3);
    const OTHER: MessageKind = MessageKind::new(4);

    fn delivery(receiver: usize, sender: usize, kind: MessageKind) -> Delivery {
        Delivery {
            receiver: NodeId::new(receiver),
            sender: NodeId::new(sender),
            message: Message::plain(NodeId::new(sender), kind, 0),
        }
    }

    #[test]
    fn max_rounds_never_finishes() {
        let mut t = StopTracker::new(StopCondition::max_rounds(), 4);
        t.observe(&[delivery(0, 1, KIND)]);
        assert!(!t.is_done());
        assert_eq!(t.pending_nodes(), Vec::<NodeId>::new());
    }

    #[test]
    fn global_broadcast_tracks_all_but_source() {
        let cond = StopCondition::global_broadcast(KIND, NodeId::new(0));
        let mut t = StopTracker::new(cond, 3);
        assert_eq!(t.pending_count(), 2);
        t.observe(&[delivery(1, 0, KIND)]);
        assert!(!t.is_done());
        // The wrong kind does not satisfy node 2.
        t.observe(&[delivery(2, 0, OTHER)]);
        assert!(!t.is_done());
        t.observe(&[delivery(2, 1, KIND)]);
        assert!(t.is_done());
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn nodes_received_kind_subset() {
        let cond = StopCondition::NodesReceivedKind {
            nodes: vec![NodeId::new(2)],
            kind: KIND,
        };
        let mut t = StopTracker::new(cond, 4);
        assert_eq!(t.pending_nodes(), vec![NodeId::new(2)]);
        // Deliveries to other nodes do not matter.
        t.observe(&[delivery(1, 0, KIND)]);
        assert!(!t.is_done());
        t.observe(&[delivery(2, 3, KIND)]);
        assert!(t.is_done());
    }

    #[test]
    fn local_broadcast_requires_sender_membership() {
        let cond = StopCondition::local_broadcast(
            vec![NodeId::new(1), NodeId::new(2)],
            vec![NodeId::new(0)],
        );
        let mut t = StopTracker::new(cond, 3);
        // Reception from a non-broadcaster does not count.
        t.observe(&[delivery(1, 2, KIND)]);
        assert!(!t.is_done());
        t.observe(&[delivery(1, 0, KIND)]);
        t.observe(&[delivery(2, 0, OTHER)]); // any kind counts for local broadcast
        assert!(t.is_done());
    }

    #[test]
    fn duplicate_deliveries_do_not_underflow() {
        let cond = StopCondition::NodesReceivedKind {
            nodes: vec![NodeId::new(0)],
            kind: KIND,
        };
        let mut t = StopTracker::new(cond, 2);
        t.observe(&[delivery(0, 1, KIND), delivery(0, 1, KIND)]);
        t.observe(&[delivery(0, 1, KIND)]);
        assert!(t.is_done());
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn max_node_index_reports_referenced_nodes() {
        assert_eq!(StopCondition::max_rounds().max_node_index(), None);
        let cond = StopCondition::local_broadcast(vec![NodeId::new(5)], vec![NodeId::new(9)]);
        assert_eq!(cond.max_node_index(), Some(9));
        let cond = StopCondition::global_broadcast(KIND, NodeId::new(3));
        assert_eq!(cond.max_node_index(), Some(3));
    }

    #[test]
    fn empty_receiver_set_is_immediately_done() {
        let cond = StopCondition::local_broadcast(vec![], vec![NodeId::new(0)]);
        let t = StopTracker::new(cond, 3);
        assert!(t.is_done());
    }
}
