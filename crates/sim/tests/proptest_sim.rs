//! Property-based tests for the execution engine: reception-rule invariants,
//! determinism, and history consistency.

use std::sync::Arc;

use dradio_graphs::topology::{self, GeometricConfig};
use dradio_graphs::{DualGraph, NodeId};
use dradio_sim::{
    Action, Assignment, Message, MessageKind, Process, ProcessContext, ProcessFactory, Role, Round,
    SimConfig, Simulator, StaticLinks, StopCondition,
};
use proptest::prelude::*;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DATA: MessageKind = MessageKind::new(1);

/// A process that transmits with a fixed probability every round; sources and
/// broadcasters use probability `p`, relays stay silent.
struct RandomTalker {
    p: f64,
    msg: Option<Message>,
}

impl Process for RandomTalker {
    fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.msg {
            Some(m) if (rng.next_u64() as f64 / u64::MAX as f64) < self.p => {
                Action::Transmit(m.clone())
            }
            _ => Action::Listen,
        }
    }
    fn transmit_probability(&self, _round: Round) -> f64 {
        if self.msg.is_some() {
            self.p
        } else {
            0.0
        }
    }
}

fn talker_factory(p: f64) -> ProcessFactory {
    Arc::new(move |ctx: &ProcessContext| {
        let msg =
            (ctx.role != Role::Relay).then(|| Message::plain(ctx.id, DATA, ctx.id.index() as u64));
        Box::new(RandomTalker { p, msg }) as Box<dyn Process>
    })
}

/// Strategy over small networks of various shapes.
fn arb_network() -> impl Strategy<Value = DualGraph> {
    prop_oneof![
        (4usize..20).prop_map(|n| topology::dual_clique(2 * (n / 2).max(2)).unwrap()),
        (3usize..20).prop_map(|n| topology::line(n).unwrap()),
        (3usize..12).prop_map(|n| topology::star(n).unwrap()),
        (2usize..5).prop_map(|k| topology::bracelet(k).unwrap().into_dual()),
        (10usize..40, 0u64..100).prop_map(|(n, seed)| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            topology::random_geometric(&GeometricConfig::new(n, 3.0, 1.5), &mut rng)
                .unwrap_or_else(|_| topology::line(n).unwrap())
        }),
    ]
}

fn run(
    dual: DualGraph,
    p: f64,
    seed: u64,
    rounds: usize,
    all_links: bool,
) -> dradio_sim::ExecutionOutcome {
    let n = dual.len();
    let broadcasters: Vec<NodeId> = NodeId::all(n).filter(|u| u.index() % 2 == 0).collect();
    let assignment = Assignment::local(n, &broadcasters);
    let link: Box<dyn dradio_sim::LinkProcess> = if all_links {
        Box::new(StaticLinks::all())
    } else {
        Box::new(StaticLinks::none())
    };
    Simulator::new(
        dual,
        talker_factory(p),
        assignment,
        link,
        SimConfig::default().with_seed(seed).with_max_rounds(rounds),
    )
    .expect("valid simulation")
    .run(StopCondition::max_rounds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every delivery is to a listening node from a transmitting node that is
    /// its neighbor in the round topology, and a receiver never has two
    /// transmitting neighbors in that round.
    #[test]
    fn deliveries_respect_collision_rule(
        dual in arb_network(),
        seed in 0u64..1000,
        p in 0.05f64..0.9,
        all_links in any::<bool>(),
    ) {
        let outcome = run(dual.clone(), p, seed, 12, all_links);
        for record in outcome.history.records() {
            for d in &record.deliveries {
                // The receiver did not transmit.
                prop_assert!(!record.transmitters.contains(&d.receiver));
                // The sender transmitted.
                prop_assert!(record.transmitters.contains(&d.sender));
                // Sender and receiver are adjacent in the round topology.
                let g_edge = dual.g().has_edge(d.receiver, d.sender);
                let dyn_edge = record
                    .active_dynamic_edges
                    .iter()
                    .any(|e| e.touches(d.receiver) && e.touches(d.sender));
                prop_assert!(g_edge || dyn_edge);
                // No other neighbor of the receiver transmitted.
                let mut transmitting_neighbors = 0;
                for &t in &record.transmitters {
                    let adjacent = dual.g().has_edge(d.receiver, t)
                        || record.active_dynamic_edges.iter().any(|e| e.touches(d.receiver) && e.touches(t));
                    if adjacent {
                        transmitting_neighbors += 1;
                    }
                }
                prop_assert_eq!(transmitting_neighbors, 1);
            }
            // At most one delivery per receiver per round.
            let mut receivers: Vec<NodeId> = record.deliveries.iter().map(|d| d.receiver).collect();
            let before = receivers.len();
            receivers.sort_unstable();
            receivers.dedup();
            prop_assert_eq!(before, receivers.len());
        }
    }

    /// Identical seeds give identical executions; different seeds are allowed
    /// to differ (and usually do, but we do not assert that).
    #[test]
    fn executions_are_deterministic(
        dual in arb_network(),
        seed in 0u64..1000,
        p in 0.1f64..0.9,
    ) {
        let a = run(dual.clone(), p, seed, 10, true);
        let b = run(dual, p, seed, 10, true);
        prop_assert_eq!(a.history, b.history);
        prop_assert_eq!(a.metrics, b.metrics);
    }

    /// Metrics agree with the recorded history.
    #[test]
    fn metrics_match_history(
        dual in arb_network(),
        seed in 0u64..1000,
        p in 0.05f64..0.9,
    ) {
        let outcome = run(dual, p, seed, 15, false);
        let tx_from_history: usize = outcome.history.records().iter().map(|r| r.transmitters.len()).sum();
        let rx_from_history: usize = outcome.history.records().iter().map(|r| r.deliveries.len()).sum();
        prop_assert_eq!(outcome.metrics.transmissions, tx_from_history);
        prop_assert_eq!(outcome.metrics.deliveries, rx_from_history);
        prop_assert_eq!(outcome.metrics.rounds, outcome.history.len());
        prop_assert_eq!(outcome.history.total_deliveries(), rx_from_history);
    }

    /// With the `StaticLinks::none()` adversary the round topology never
    /// contains dynamic edges; with `StaticLinks::all()` it contains all of
    /// them in every round.
    #[test]
    fn static_link_processes_are_constant(
        dual in arb_network(),
        seed in 0u64..500,
    ) {
        let none = run(dual.clone(), 0.5, seed, 5, false);
        for record in none.history.records() {
            prop_assert!(record.active_dynamic_edges.is_empty());
        }
        let expected = dual.dynamic_edges().len();
        let all = run(dual, 0.5, seed, 5, true);
        for record in all.history.records() {
            prop_assert_eq!(record.active_dynamic_edges.len(), expected);
        }
    }

    /// Random bit strings round-trip through readers: reading `len` bits one
    /// at a time reproduces the string.
    #[test]
    fn bitstring_reader_round_trip(len in 0usize..300, seed in 0u64..1000) {
        let bits = dradio_sim::BitString::random(len, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(bits.len(), len);
        let mut reader = bits.reader();
        let mut collected = Vec::with_capacity(len);
        while let Some(b) = reader.take(1) {
            collected.push(b == 1);
        }
        prop_assert_eq!(collected.len(), len);
        let rebuilt = dradio_sim::BitString::from_bools(collected);
        prop_assert_eq!(rebuilt, bits);
    }

    /// A lone broadcaster in a static star delivers to every leaf in one
    /// round regardless of the seed (sanity anchor for the collision rule).
    #[test]
    fn lone_transmitter_always_delivers(n in 3usize..12, seed in 0u64..200) {
        let dual = topology::star(n).unwrap();
        let assignment = Assignment::local(n, &[NodeId::new(1)]);
        let outcome = Simulator::new(
            dual,
            talker_factory(1.0),
            assignment,
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(seed).with_max_rounds(1),
        )
        .unwrap()
        .run(StopCondition::max_rounds());
        // Leaf 1 transmits every round; only the hub is its neighbor.
        prop_assert!(outcome.history.received_kind(NodeId::new(0), DATA));
        prop_assert_eq!(outcome.metrics.deliveries, 1);
    }

    /// Sampling determinism for the random talker factory: the declared
    /// transmit probability matches empirical behaviour within a loose bound.
    #[test]
    fn transmit_probability_matches_behaviour(seed in 0u64..50) {
        let p = 0.3;
        let dual = topology::line(2).unwrap();
        let assignment = Assignment::local(2, &[NodeId::new(0)]);
        let rounds = 400;
        let outcome = Simulator::new(
            dual,
            talker_factory(p),
            assignment,
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(seed).with_max_rounds(rounds),
        )
        .unwrap()
        .run(StopCondition::max_rounds());
        let tx = outcome.history.transmissions_of(NodeId::new(0)) as f64;
        let rate = tx / rounds as f64;
        prop_assert!((rate - p).abs() < 0.12, "empirical rate {rate} too far from {p}");
    }
}

/// Non-proptest integration check: a deterministic relay chain floods a line
/// in exactly `n - 1` rounds under the static model.
#[test]
fn relay_chain_floods_line() {
    struct Relay {
        have: Option<Message>,
        sent: bool,
    }
    impl Process for Relay {
        fn on_round(&mut self, _round: Round, _rng: &mut dyn RngCore) -> Action {
            match (&self.have, self.sent) {
                (Some(m), false) => {
                    self.sent = true;
                    Action::Transmit(m.clone())
                }
                _ => Action::Listen,
            }
        }
        fn on_feedback(
            &mut self,
            _round: Round,
            feedback: &dradio_sim::Feedback,
            _rng: &mut dyn RngCore,
        ) {
            if let Some(m) = feedback.message() {
                if self.have.is_none() {
                    self.have = Some(m.clone());
                }
            }
        }
        fn is_informed(&self) -> bool {
            self.have.is_some()
        }
    }

    let n = 12;
    let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
        let have = (ctx.role == Role::Source).then(|| Message::plain(ctx.id, DATA, 0));
        Box::new(Relay { have, sent: false }) as Box<dyn Process>
    });
    let dual = topology::line(n).unwrap();
    let outcome = Simulator::new(
        dual,
        factory,
        Assignment::global(n, NodeId::new(0)),
        Box::new(StaticLinks::none()),
        SimConfig::default().with_max_rounds(100),
    )
    .unwrap()
    .run(StopCondition::global_broadcast(DATA, NodeId::new(0)));
    assert!(outcome.completed);
    // The message advances one hop per round along the line.
    assert_eq!(outcome.cost(), n - 1);
}

/// The per-node random streams really are independent of the master stream
/// order: changing one node's behaviour does not perturb another node's coin
/// sequence (regression guard for seed derivation).
#[test]
fn per_node_streams_are_stable() {
    let dual = topology::line(3).unwrap();
    let run_with = |p: f64| {
        let factory = talker_factory(p);
        Simulator::new(
            dual.clone(),
            factory,
            Assignment::local(3, &[NodeId::new(0), NodeId::new(2)]),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(11).with_max_rounds(50),
        )
        .unwrap()
        .run(StopCondition::max_rounds())
    };
    let a = run_with(0.5);
    let b = run_with(0.5);
    assert_eq!(a.history, b.history);
    // A hygiene check on the seed derivation itself.
    let mut r0 = ChaCha8Rng::seed_from_u64(1);
    let mut r1 = ChaCha8Rng::seed_from_u64(2);
    assert_ne!(r0.gen::<u64>(), r1.gen::<u64>());
}
