//! The adversary-power story of Figure 1 on a single topology.
//!
//! Runs global broadcast on the dual clique against one adversary of each
//! capability class and prints how the cost explodes as the adversary gets
//! stronger — the central message of the paper.
//!
//! ```text
//! cargo run --release --example adversarial_clique
//! ```

use dradio::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    println!("global broadcast on the dual clique, n = {n}\n");
    println!(
        "{:<20} {:<18} {:>10} {:>10}",
        "adversary class", "adversary", "rounds", "done"
    );

    let cases: Vec<(&str, &str, AdversarySpec)> = vec![
        (
            "(static model)",
            "no dynamic links",
            AdversarySpec::StaticNone,
        ),
        ("oblivious", "iid(0.5)", AdversarySpec::Iid { p: 0.5 }),
        (
            "oblivious",
            "bursty",
            AdversarySpec::GilbertElliott {
                p_fail: 0.1,
                p_recover: 0.1,
            },
        ),
        (
            "oblivious",
            "decay-aware",
            AdversarySpec::DecayAware {
                levels: None,
                assumed_transmitters: (0..n / 2).collect(),
            },
        ),
        (
            "online adaptive",
            "dense/sparse",
            AdversarySpec::DenseSparse {
                density_factor: None,
            },
        ),
        ("offline adaptive", "omniscient", AdversarySpec::Omniscient),
    ];

    for (class, name, adversary) in cases {
        let scenario = Scenario::on(TopologySpec::DualClique { n })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(adversary)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(7)
            .max_rounds(60_000)
            .build()?;
        let outcome = scenario.run();
        println!(
            "{class:<20} {name:<18} {:>10} {:>10}",
            outcome.cost(),
            outcome.completed
        );
    }

    println!(
        "\nThe oblivious rows stay polylogarithmic (Theorem 4.1); the adaptive rows blow up \
         towards the Omega(n/log n) and Omega(n) lower bounds of Figure 1."
    );
    Ok(())
}
