//! The adversary-power story of Figure 1 on a single topology.
//!
//! Runs global broadcast on the dual clique against one adversary of each
//! capability class and prints how the cost explodes as the adversary gets
//! stronger — the central message of the paper.
//!
//! ```text
//! cargo run --release --example adversarial_clique
//! ```

use dradio::prelude::*;

fn run_one(
    dual: &DualGraph,
    algorithm: GlobalAlgorithm,
    link: Box<dyn LinkProcess>,
    seed: u64,
) -> Result<(usize, bool), Box<dyn std::error::Error>> {
    let problem = GlobalBroadcastProblem::new(NodeId::new(0));
    let outcome = Simulator::new(
        dual.clone(),
        algorithm.factory(dual.len(), dual.max_degree()),
        problem.assignment(dual.len()),
        link,
        SimConfig::default().with_seed(seed).with_max_rounds(60_000),
    )?
    .run(problem.stop_condition());
    Ok((outcome.cost(), outcome.completed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let dual = topology::dual_clique(n)?;
    println!("global broadcast on {dual}\n");
    println!("{:<20} {:<18} {:>10} {:>10}", "adversary class", "adversary", "rounds", "done");

    let cases: Vec<(&str, &str, Box<dyn Fn() -> Box<dyn LinkProcess>>)> = vec![
        ("(static model)", "no dynamic links", Box::new(|| Box::new(StaticLinks::none()))),
        ("oblivious", "iid(0.5)", Box::new(|| Box::new(IidLinks::new(0.5)))),
        ("oblivious", "bursty", Box::new(|| Box::new(GilbertElliottLinks::new(0.1, 0.1)))),
        ("oblivious", "decay-aware", Box::new(move || {
            let side_a: Vec<NodeId> = (0..n / 2).map(NodeId::new).collect();
            Box::new(DecayAwareOblivious::for_network(n).assuming_transmitters(side_a))
        })),
        ("online adaptive", "dense/sparse", Box::new(|| Box::new(DenseSparseOnline::default()))),
        ("offline adaptive", "omniscient", Box::new(|| Box::new(OmniscientOffline::new()))),
    ];

    for (class, name, make_link) in &cases {
        let (rounds, done) = run_one(&dual, GlobalAlgorithm::Permuted, make_link(), 7)?;
        println!("{class:<20} {name:<18} {rounds:>10} {done:>10}");
    }

    println!(
        "\nThe oblivious rows stay polylogarithmic (Theorem 4.1); the adaptive rows blow up \
         towards the Omega(n/log n) and Omega(n) lower bounds of Figure 1."
    );
    Ok(())
}
