//! Regenerate the paper's Figure 1 as measured tables.
//!
//! This is a thin wrapper over the experiment registry (the same code the
//! `repro` binary uses); it runs the quick configuration of every experiment
//! and prints the tables.
//!
//! ```text
//! cargo run --release --example figure1 [-- smoke|quick|full]
//! ```

use dradio::prelude::*;

fn main() {
    let cfg = match std::env::args().nth(1).as_deref() {
        Some("smoke") => ExperimentConfig::smoke(),
        Some("full") => ExperimentConfig::full(),
        _ => ExperimentConfig::quick(),
    };
    println!("# Figure 1 reproduction ({cfg:?})\n");
    for experiment in experiments::all() {
        println!("=== {} — {} ===", experiment.id(), experiment.title());
        println!("paper claim: {}\n", experiment.paper_claim());
        let tables = experiment
            .run(&cfg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", experiment.id()));
        for table in tables {
            println!("{}", table.render());
        }
    }
}
