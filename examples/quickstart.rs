//! Quickstart: run one global broadcast on an unreliable network and print
//! what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dradio::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node dual clique: two reliable cliques joined by a single reliable
    // bridge; every other pair is connected only by an unreliable link that
    // the adversary controls round by round.
    //
    // The adversary: independent 50% loss on every unreliable link, an
    // oblivious "environmental" model.
    //
    // The algorithm: the paper's permuted-decay global broadcast (Theorem
    // 4.1), which stays fast against any oblivious adversary.
    let scenario = Scenario::on(TopologySpec::DualClique { n: 64 })
        .algorithm(GlobalAlgorithm::Permuted)
        .adversary(AdversarySpec::Iid { p: 0.5 })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(42)
        .max_rounds(20_000)
        .build()?;
    println!("network: {}", scenario.dual());
    println!("scenario: {scenario}");

    let outcome = scenario.run();
    println!(
        "broadcast {} in {} rounds ({} transmissions, {} collisions)",
        if outcome.completed {
            "completed"
        } else {
            "did NOT complete"
        },
        outcome.cost(),
        outcome.metrics.transmissions,
        outcome.metrics.collisions,
    );
    assert!(scenario.verify(&outcome.history));

    // Scenarios are values: store this one and rebuild it later, bit-for-bit.
    println!("\nas JSON: {}", serde_json::to_string(scenario.spec())?);

    // Compare with the classic fixed-schedule decay under the same adversary
    // — same scenario, one field swapped.
    let bgi = Scenario::on(TopologySpec::DualClique { n: 64 })
        .algorithm(GlobalAlgorithm::Bgi)
        .adversary(AdversarySpec::Iid { p: 0.5 })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(42)
        .max_rounds(20_000)
        .build()?;
    println!(
        "\nplain decay under the same adversary: {} rounds",
        bgi.run().cost()
    );

    // And eight independent trials of each, run in parallel with
    // deterministic per-trial seeds.
    println!(
        "over 8 trials: permuted {} vs plain {}",
        scenario.run_trials(8)?.rounds,
        bgi.run_trials(8)?.rounds,
    );
    Ok(())
}
