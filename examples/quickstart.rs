//! Quickstart: run one global broadcast on an unreliable network and print
//! what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dradio::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node dual clique: two reliable cliques joined by a single reliable
    // bridge; every other pair is connected only by an unreliable link that
    // the adversary controls round by round.
    let dual = topology::dual_clique(64)?;
    println!("network: {dual}");

    // The adversary: independent 50% loss on every unreliable link, an
    // oblivious "environmental" model.
    let adversary = IidLinks::new(0.5);

    // The algorithm: the paper's permuted-decay global broadcast (Theorem
    // 4.1), which stays fast against any oblivious adversary.
    let problem = GlobalBroadcastProblem::new(NodeId::new(0));
    let outcome = Simulator::new(
        dual.clone(),
        GlobalAlgorithm::Permuted.factory(dual.len(), dual.max_degree()),
        problem.assignment(dual.len()),
        Box::new(adversary),
        SimConfig::default().with_seed(42).with_max_rounds(20_000),
    )?
    .run(problem.stop_condition());

    println!(
        "broadcast {} in {} rounds ({} transmissions, {} collisions)",
        if outcome.completed { "completed" } else { "did NOT complete" },
        outcome.cost(),
        outcome.metrics.transmissions,
        outcome.metrics.collisions,
    );
    assert!(problem.verify(&dual, &outcome.history));

    // Compare with the classic fixed-schedule decay under the same adversary.
    let outcome_bgi = Simulator::new(
        dual.clone(),
        GlobalAlgorithm::Bgi.factory(dual.len(), dual.max_degree()),
        problem.assignment(dual.len()),
        Box::new(IidLinks::new(0.5)),
        SimConfig::default().with_seed(42).with_max_rounds(20_000),
    )?
    .run(problem.stop_condition());
    println!(
        "plain decay under the same adversary: {} rounds",
        outcome_bgi.cost()
    );
    Ok(())
}
