//! A sensor-field scenario: local broadcast in a geographic deployment with
//! unreliable grey-zone links.
//!
//! A field of sensors is dropped uniformly at random; nodes within distance 1
//! always hear each other, nodes between distance 1 and 1.5 have flaky links
//! (bursty on/off), and a quarter of the sensors have an alarm to report to
//! their neighbors. The example compares the paper's seed-coordinated
//! geographic algorithm (Theorem 4.6) with the static-model decay baseline
//! and the round-robin fallback.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use dradio::prelude::*;
use dradio::graphs::topology::GeometricConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 150;
    let side = (n as f64 / 8.0).sqrt();
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let dual = topology::random_geometric(&GeometricConfig::new(n, side, 1.5), &mut rng)?;
    let regions = dradio::graphs::RegionDecomposition::build(&dual, 1.5)?;
    println!("deployment: {dual}");
    println!(
        "region decomposition: {} regions, at most {} neighboring regions (gamma bound {})",
        regions.region_count(),
        regions.max_region_neighbors(),
        dradio::graphs::RegionDecomposition::gamma_bound(1.5),
    );

    // A quarter of the sensors raise an alarm.
    let problem = LocalBroadcastProblem::random(&dual, n / 4, &mut rng);
    println!(
        "{} broadcasters, {} receivers must hear an alarm\n",
        problem.broadcasters().len(),
        problem.receivers(&dual).len()
    );

    println!("{:<16} {:>10} {:>12}", "algorithm", "rounds", "collisions");
    for algorithm in [LocalAlgorithm::Geo, LocalAlgorithm::StaticDecay, LocalAlgorithm::RoundRobin] {
        let outcome = Simulator::new(
            dual.clone(),
            algorithm.factory(n, dual.max_degree()),
            problem.assignment(n),
            Box::new(GilbertElliottLinks::new(0.1, 0.2)),
            SimConfig::default().with_seed(9).with_max_rounds(40 * n + 4_000),
        )?
        .run(problem.stop_condition(&dual));
        assert!(problem.verify(&dual, &outcome.history) || !outcome.completed);
        println!(
            "{:<16} {:>10} {:>12}",
            algorithm.name(),
            outcome.cost(),
            outcome.metrics.collisions
        );
    }

    println!(
        "\nThe geographic algorithm pays an up-front seed-dissemination stage but its broadcast \
         stage coordinates same-seed sensors, keeping the total polylogarithmic (Theorem 4.6)."
    );
    Ok(())
}
