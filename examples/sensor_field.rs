//! A sensor-field scenario: local broadcast in a geographic deployment with
//! unreliable grey-zone links.
//!
//! A field of sensors is dropped uniformly at random; nodes within distance 1
//! always hear each other, nodes between distance 1 and 1.5 have flaky links
//! (bursty on/off), and a quarter of the sensors have an alarm to report to
//! their neighbors. The example compares the paper's seed-coordinated
//! geographic algorithm (Theorem 4.6) with the static-model decay baseline
//! and the round-robin fallback.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use dradio::graphs::RegionDecomposition;
use dradio::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 150;
    let side = (n as f64 / 8.0).sqrt();
    let deployment = TopologySpec::RandomGeometric {
        n,
        side,
        r: 1.5,
        seed: 2024,
    };
    let alarms = ProblemSpec::LocalRandom {
        count: n / 4,
        seed: 2025,
    };

    // The deployment and the alarm set are pinned by their own spec seeds, so
    // every algorithm below runs on the identical network and broadcaster
    // set.
    let scenarios: Vec<(LocalAlgorithm, Scenario)> = [
        LocalAlgorithm::Geo,
        LocalAlgorithm::StaticDecay,
        LocalAlgorithm::RoundRobin,
    ]
    .into_iter()
    .map(|algorithm| {
        let scenario = Scenario::on(deployment.clone())
            .algorithm(algorithm)
            .adversary(AdversarySpec::GilbertElliott {
                p_fail: 0.1,
                p_recover: 0.2,
            })
            .problem(alarms.clone())
            .seed(9)
            .max_rounds(40 * n + 4_000)
            .build()
            .expect("dense deployments connect");
        (algorithm, scenario)
    })
    .collect();

    let first = &scenarios[0].1;
    let regions = RegionDecomposition::build(first.dual(), 1.5)?;
    println!("deployment: {}", first.dual());
    println!(
        "region decomposition: {} regions, at most {} neighboring regions (gamma bound {})",
        regions.region_count(),
        regions.max_region_neighbors(),
        RegionDecomposition::gamma_bound(1.5),
    );
    println!(
        "{} broadcasters raise an alarm\n",
        first.assignment().broadcasters().len()
    );

    println!("{:<16} {:>10} {:>12}", "algorithm", "rounds", "collisions");
    for (algorithm, scenario) in &scenarios {
        let outcome = scenario.run();
        assert!(scenario.verify(&outcome.history) || !outcome.completed);
        println!(
            "{:<16} {:>10} {:>12}",
            algorithm.name(),
            outcome.cost(),
            outcome.metrics.collisions
        );
    }

    println!(
        "\nThe geographic algorithm pays an up-front seed-dissemination stage but its broadcast \
         stage coordinates same-seed sensors, keeping the total polylogarithmic (Theorem 4.6)."
    );
    Ok(())
}
