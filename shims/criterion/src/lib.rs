//! Offline stand-in for the slice of `criterion` this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, and `Bencher::iter`.
//!
//! Timing is a plain wall-clock mean over `sample_size` runs after one
//! warm-up run — adequate for spotting order-of-magnitude regressions in the
//! simulation workloads, with none of the real crate's statistics, plotting
//! or comparison machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimizer from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark within a group as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Passed to the measured closure; runs and times the workload.
pub struct Bencher {
    iterations: usize,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, running it once to warm up and then `sample_size`
    /// times for the measurement.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        let _warmup = black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured runs per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark over an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            total: Duration::ZERO,
        };
        f(&mut bencher, input);
        if self.criterion.test_mode {
            println!("{}/{}: test mode, 1 run, ok", self.name, id);
        } else {
            let mean = bencher
                .total
                .checked_div(bencher.iterations as u32)
                .unwrap_or_default();
            println!(
                "{}/{}: {:>12.3?} mean over {} runs",
                self.name, id, mean, bencher.iterations
            );
        }
        self.criterion.ran += 1;
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group (printing is immediate, so this is bookkeeping only).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    ran: usize,
    test_mode: bool,
}

impl Criterion {
    /// Builds a harness configured from the benchmark binary's command line
    /// (mirroring the real crate's `--test` flag, which runs every benchmark
    /// exactly once without measuring — the CI smoke mode).
    pub fn from_args() -> Self {
        Criterion {
            ran: 0,
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }

    /// Switches the harness into test mode (each benchmark runs once).
    pub fn with_test_mode(mut self, enabled: bool) -> Self {
        self.test_mode = enabled;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Declares a benchmark group function list (mirrors the real macro's
/// `criterion_group!(benches, f, g, ...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_workloads() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 7), &7usize, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<usize>()
            });
        });
        group.finish();
        // One warm-up + three measured runs.
        assert_eq!(calls, 4);
        assert_eq!(criterion.ran, 1);
    }

    #[test]
    fn id_formats_as_name_slash_parameter() {
        assert_eq!(BenchmarkId::new("bgi", 64).to_string(), "bgi/64");
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut criterion = Criterion::default().with_test_mode(true);
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(50);
        let mut calls = 0usize;
        group.bench_function(BenchmarkId::new("noop", 0), |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.finish();
        // One warm-up + one measured run, regardless of sample size.
        assert_eq!(calls, 2);
        assert_eq!(criterion.ran, 1);
    }
}
