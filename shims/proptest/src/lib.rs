//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro DSL (`fn name(pat in strategy, ...)`),
//! range / tuple / `Just` / `any::<bool>()` strategies, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`, `proptest::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed derived from the test name (so failures reproduce
//! trivially), and failing cases are **not shrunk** — the panic message
//! reports the case number instead of a minimal counterexample.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::{RngCore, SampleRange, SeedableRng};

/// The RNG driving test-case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Creates the deterministic generation RNG for a named test.
pub fn new_test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps independent tests on distinct streams.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Per-test configuration (the subset the workspace sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps simulation-heavy properties fast
        // while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from
    /// it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut dyn RngCore) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn ErasedStrategy<V>>);

trait ErasedStrategy<V> {
    fn generate_erased(&self, rng: &mut dyn RngCore) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut dyn RngCore) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut dyn RngCore) -> V {
        self.0.generate_erased(rng)
    }
}

/// A uniform choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut dyn RngCore) -> V {
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut dyn RngCore) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        self.clone().sample_single(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut dyn RngCore) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{RngCore, SampleRange, Strategy};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
            let len = self.size.clone().sample_single(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}",
                    stringify!($left),
                    stringify!($right),
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {left:?}\n right: {right:?}",
                        format!($($fmt)*),
                    )));
                }
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each `pat in strategy` argument is freshly
/// generated per case; `prop_assert*` failures report the case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(
                            let $pat = $crate::Strategy::generate(&($strategy), &mut rng);
                        )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "property {} failed at case {case}/{}: {error}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f), "f was {f}");
        }

        #[test]
        fn tuples_and_flat_maps_compose(
            (n, xs) in (2usize..10).prop_flat_map(|n| {
                (crate::Just(n), crate::collection::vec(0..n, 0..8))
            }),
        ) {
            prop_assert!(n >= 2);
            for x in xs {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn oneof_picks_every_branch_eventually(v in prop_oneof![Just(1usize), Just(2), 5usize..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }

        #[test]
        fn any_bool_is_a_bool(b in any::<bool>()) {
            prop_assert_eq!(b as usize, usize::from(b));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strategy = (0usize..1000, 0usize..1000);
        let mut a = crate::new_test_rng("x");
        let mut b = crate::new_test_rng("x");
        let mut c = crate::new_test_rng("y");
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        // Distinct names drive distinct streams (overwhelmingly likely).
        let from_a: Vec<_> = (0..10).map(|_| strategy.generate(&mut a)).collect();
        let from_c: Vec<_> = (0..10).map(|_| strategy.generate(&mut c)).collect();
        assert_ne!(from_a, from_c);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_the_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was only {x}");
            }
        }
        always_fails();
    }
}
