//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this API-compatible subset: the [`RngCore`] / [`SeedableRng`] traits, the
//! [`Rng`] extension trait with `gen_range` / `gen_bool`, and the blanket
//! impls that make `&mut R` usable as an RNG. Algorithms in this repository
//! draw their randomness through these traits from the deterministic
//! generator in the sibling `rand_chacha` shim, so simulations remain fully
//! reproducible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the object-safe part of the API.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 the
    /// way `rand` 0.8 does (every byte of the seed depends on `state`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = chunk.len();
            chunk.copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything these simulations can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

uint_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types [`Rng::gen`] can produce (the `Standard` distribution of real
/// `rand`, for the primitives this workspace samples).
pub trait StandardSample {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for testing the trait plumbing.
    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = Step(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mut_ref_is_an_rng_too() {
        fn takes_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = Step(4);
        let _ = takes_rng(&mut rng);
        let dynamic: &mut dyn RngCore = &mut rng;
        let _ = dynamic.next_u64();
    }
}
