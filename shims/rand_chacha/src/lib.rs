//! Offline stand-in for `rand_chacha` 0.3: a genuine ChaCha8 keystream
//! generator behind the `rand` shim's [`RngCore`] / [`SeedableRng`] traits.
//!
//! The implementation follows RFC 7539's block function with 8 rounds (the
//! word order of output and counter handling match the reference stream
//! cipher; exact bit-compatibility with the crates.io crate is *not*
//! guaranteed and nothing in this workspace depends on it — only on
//! determinism per seed, which holds).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + nonce state template (counter lives separately).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Buffered keystream words from the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, start) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(start);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_balanced() {
        // Not a statistical test suite — just a sanity check that bits flip.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += rng.next_u64().count_ones();
        }
        let total = 1024 * 64;
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.02);
    }
}
