//! Offline stand-in for the slice of `rayon` this workspace uses:
//! `(range).into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work really is fanned out across OS threads (one per available core,
//! capped by the job count) with dynamic self-scheduling over an atomic
//! index, and results are written back by index — so output order equals
//! input order regardless of scheduling, exactly like rayon's indexed
//! parallel iterators.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The parallel iterator produced.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator over a `Range<usize>`.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// The result of [`ParRange::map`], awaiting a `collect`.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map on every index, in parallel, and collects the results in
    /// index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        if len == 0 {
            return Vec::new().into();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(len);
        if threads <= 1 {
            let out: Vec<T> = (start..self.range.end).map(&self.f).collect();
            return out.into();
        }

        let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(start + i);
                    *slots[i].lock().expect("no panics hold the slot lock") = Some(value);
                });
            }
        });
        let out: Vec<T> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every index was scheduled exactly once")
            })
            .collect();
        out.into()
    }
}

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    #[test]
    fn collect_preserves_index_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out: Vec<usize> = (0..257)
            .into_par_iter()
            .map(|i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn work_spreads_across_threads_when_cores_allow() {
        let ids: Vec<ThreadId> = (0..64)
            .into_par_iter()
            .map(|_| {
                // Give the scheduler a chance to interleave.
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let distinct: HashSet<ThreadId> = ids.into_iter().collect();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                distinct.len() > 1,
                "expected parallel execution on {cores} cores"
            );
        }
    }
}
