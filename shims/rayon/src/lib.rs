//! Offline stand-in for the slice of `rayon` this workspace uses:
//! `(range).into_par_iter().map(f).collect::<Vec<_>>()` and the
//! per-worker-state variant `map_init(init, f)`.
//!
//! Work really is fanned out across OS threads (one per available core,
//! capped by the job count) with dynamic self-scheduling over an atomic
//! index, and results are written back by index — so output order equals
//! input order regardless of scheduling, exactly like rayon's indexed
//! parallel iterators.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// The parallel iterator produced.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator over a `Range<usize>`.
#[derive(Debug, Clone)]
pub struct ParRange {
    range: Range<usize>,
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }

    /// Maps each index through `f` in parallel, threading a per-worker state
    /// created by `init` through every call that worker makes — rayon's
    /// `map_init`. Like rayon, `init` may be invoked more than once (here:
    /// exactly once per worker thread), so results must not depend on how
    /// indices are grouped onto states.
    pub fn map_init<S, T, INIT, F>(self, init: INIT, f: F) -> ParMapInit<INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
    {
        ParMapInit {
            range: self.range,
            init,
            f,
        }
    }
}

/// The result of [`ParRange::map`], awaiting a `collect`.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map on every index, in parallel, and collects the results in
    /// index order.
    pub fn collect<T, C>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        if len == 0 {
            return Vec::new().into();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(len);
        if threads <= 1 {
            let out: Vec<T> = (start..self.range.end).map(&self.f).collect();
            return out.into();
        }

        let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let value = f(start + i);
                    *slots[i].lock().expect("no panics hold the slot lock") = Some(value);
                });
            }
        });
        let out: Vec<T> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every index was scheduled exactly once")
            })
            .collect();
        out.into()
    }
}

/// The result of [`ParRange::map_init`], awaiting a `collect`.
pub struct ParMapInit<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> ParMapInit<INIT, F> {
    /// Runs the map on every index, in parallel with one state per worker,
    /// and collects the results in index order.
    pub fn collect<S, T, C>(self) -> C
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        if len == 0 {
            return Vec::new().into();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(len);
        if threads <= 1 {
            let mut state = (self.init)();
            let out: Vec<T> = (start..self.range.end)
                .map(|i| (self.f)(&mut state, i))
                .collect();
            return out.into();
        }

        let slots: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let init = &self.init;
        let f = &self.f;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let value = f(&mut state, start + i);
                        *slots[i].lock().expect("no panics hold the slot lock") = Some(value);
                    }
                });
            }
        });
        let out: Vec<T> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every index was scheduled exactly once")
            })
            .collect();
        out.into()
    }
}

/// Mirrors `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    #[test]
    fn collect_preserves_index_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out: Vec<usize> = (0..257)
            .into_par_iter()
            .map(|i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn map_init_matches_map_and_reuses_state_per_worker() {
        let out: Vec<usize> = (0..500)
            .into_par_iter()
            .map_init(
                || 0usize,
                |calls, i| {
                    *calls += 1;
                    i * 3
                },
            )
            .collect();
        assert_eq!(out, (0..500).map(|i| i * 3).collect::<Vec<_>>());

        // Every index runs exactly once, summed across all worker states.
        let total = AtomicUsize::new(0);
        let _: Vec<()> = (0..257)
            .into_par_iter()
            .map_init(
                || (),
                |(), _| {
                    total.fetch_add(1, Ordering::Relaxed);
                },
            )
            .collect();
        assert_eq!(total.load(Ordering::Relaxed), 257);

        // Empty ranges never invoke init or f.
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = (5..5)
            .into_par_iter()
            .map_init(|| inits.fetch_add(1, Ordering::Relaxed), |_, i| i)
            .collect();
        assert!(out.is_empty());
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn work_spreads_across_threads_when_cores_allow() {
        let ids: Vec<ThreadId> = (0..64)
            .into_par_iter()
            .map(|_| {
                // Give the scheduler a chance to interleave.
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let distinct: HashSet<ThreadId> = ids.into_iter().collect();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                distinct.len() > 1,
                "expected parallel execution on {cores} cores"
            );
        }
    }
}
