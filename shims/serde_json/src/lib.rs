//! Offline stand-in for `serde_json`: renders and parses the `serde` shim's
//! [`Value`] model as JSON text.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports; the `Result` mirrors
/// the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ---- rendering -------------------------------------------------------------

fn render(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let text = format!("{x}");
                out.push_str(&text);
                // Keep the float/integer distinction in the text so the value
                // re-parses with the same variant.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's identifiers; reject them loudly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|x| Value::Int(-x))
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("dual \"clique\"\n".into())),
            ("n".into(), Value::UInt(64)),
            ("offset".into(), Value::Int(-3)),
            ("p".into(), Value::Float(0.5)),
            ("whole".into(), Value::Float(4.0)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "seq".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let compact = {
            let mut out = String::new();
            render(&value, &mut out, None, 0);
            out
        };
        assert_eq!(parse(&compact).unwrap(), value);
        let pretty = {
            let mut out = String::new();
            render(&value, &mut out, Some(2), 0);
            out
        };
        assert_eq!(parse(&pretty).unwrap(), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(usize, usize)> = vec![(1, 2), (3, 4)];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[[1,2],[3,4]]");
        let back: Vec<(usize, usize)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
        assert!(from_str::<bool>("7").is_err());
    }

    #[test]
    fn whole_floats_reparse_as_floats() {
        let text = to_string(&4.0f64).unwrap();
        assert_eq!(text, "4.0");
        assert_eq!(parse(&text).unwrap(), Value::Float(4.0));
    }
}
