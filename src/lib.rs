//! # dradio — dual-graph radio network broadcast
//!
//! A Rust implementation and experimental reproduction of
//! **"The Cost of Radio Network Broadcast for Different Models of Unreliable
//! Links"** (Ghaffari, Lynch, Newport — PODC 2013).
//!
//! The facade crate re-exports the workspace members under short module
//! names so applications can depend on a single crate:
//!
//! * [`graphs`] — graph/dual-graph representations and topology generators
//!   (dual clique, bracelet, geographic unit-disk graphs with a grey zone, …);
//! * [`sim`] — the synchronous dual-graph radio network execution engine with
//!   structurally enforced adversary capability classes;
//! * [`adversary`] — oblivious, online adaptive and offline adaptive link
//!   processes, including every attacker used in the paper's lower bounds;
//! * [`core`] — the broadcast algorithms (Decay, Permuted Decay, BGI, the
//!   geographic local broadcast) plus the β-hitting game and the Theorem 3.1
//!   reduction;
//! * [`scenario`] — the declarative [`Scenario`](scenario::Scenario) API:
//!   every (topology × algorithm × adversary × problem) combination as a
//!   printable, storable value, with a parallel deterministic trial runner —
//!   **the entry point for running simulations**;
//! * [`campaign`] — declarative parameter sweeps over scenarios
//!   ([`CampaignSpec`](campaign::CampaignSpec)) executed with work-stealing
//!   parallelism across cells and streamed to a persistent, resumable JSONL
//!   result store — **the entry point for large measurement runs**;
//! * [`analysis`] — the experiment harness reproducing Figure 1 (experiments
//!   E1–E8), defined as campaigns over the scenario layer.
//!
//! # Quickstart
//!
//! ```
//! use dradio::prelude::*;
//!
//! // A 64-node network: two reliable cliques joined by one reliable bridge,
//! // every other pair connected by an unreliable link (the paper's "dual
//! // clique" lower-bound topology). Global broadcast from node 0 with the
//! // paper's permuted-decay algorithm, against an adversary that flips every
//! // unreliable link on and off independently each round.
//! let scenario = Scenario::on(TopologySpec::DualClique { n: 64 })
//!     .algorithm(GlobalAlgorithm::Permuted)
//!     .adversary(AdversarySpec::Iid { p: 0.5 })
//!     .problem(ProblemSpec::GlobalFrom(0))
//!     .seed(7)
//!     .max_rounds(20_000)
//!     .build()?;
//!
//! // One execution:
//! let outcome = scenario.run();
//! assert!(outcome.completed);
//! assert!(scenario.verify(&outcome.history));
//! println!("broadcast finished in {} rounds", outcome.cost());
//!
//! // Eight independent trials, fanned out across threads with
//! // deterministic per-trial seeds:
//! let measurement = scenario.run_trials(8)?;
//! assert_eq!(measurement.completion_rate(), 1.0);
//! # Ok::<(), dradio::scenario::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dradio_adversary as adversary;
pub use dradio_analysis as analysis;
pub use dradio_campaign as campaign;
pub use dradio_core as core;
pub use dradio_graphs as graphs;
pub use dradio_scenario as scenario;
pub use dradio_sim as sim;

/// A convenient set of the most commonly used items.
pub mod prelude {
    pub use dradio_adversary::{
        BraceletOblivious, DecayAwareOblivious, DenseSparseOnline, GilbertElliottLinks,
        GreedyCollisionOnline, IidLinks, OmniscientOffline, ScheduleLinks,
    };
    pub use dradio_analysis::experiments::{self, Experiment, ExperimentConfig};
    pub use dradio_campaign::{
        CampaignError, CampaignRunner, CampaignSpec, CellRecord, CellSpec, ResultStore, RoundsRule,
        RunReport, SweepGroup, TrialPolicy,
    };
    pub use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
    pub use dradio_core::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
    pub use dradio_graphs::{properties, topology, DualGraph, Graph, NodeId};
    pub use dradio_scenario::{
        AdversarySpec, AlgorithmSpec, BackendChoice, GraphBackend, Measurement, ProblemSpec,
        Scenario, ScenarioRunner, ScenarioSpec, TopologySpec,
    };
    pub use dradio_sim::{
        Action, AdversaryClass, Assignment, ExecutionOutcome, Feedback, LinkFactory, LinkProcess,
        Message, MessageKind, Process, ProcessContext, ProcessFactory, RecordMode, Role, Round,
        SimConfig, Simulator, StaticLinks, StopCondition, TrialExecutor,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let dual = topology::dual_clique(8).unwrap();
        assert_eq!(dual.len(), 8);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        assert_eq!(problem.source(), NodeId::new(0));
        let _ = GlobalAlgorithm::all();
        let _ = LocalAlgorithm::all();
        let _ = ExperimentConfig::smoke();
    }

    #[test]
    fn prelude_builds_scenarios() {
        let scenario = Scenario::on(TopologySpec::Clique { n: 8 })
            .algorithm(GlobalAlgorithm::Bgi)
            .adversary(AdversarySpec::StaticNone)
            .problem(ProblemSpec::GlobalFrom(0))
            .build()
            .expect("valid scenario");
        let outcome = scenario.run();
        assert!(outcome.completed);
    }
}
