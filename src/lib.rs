//! # dradio — dual-graph radio network broadcast
//!
//! A Rust implementation and experimental reproduction of
//! **"The Cost of Radio Network Broadcast for Different Models of Unreliable
//! Links"** (Ghaffari, Lynch, Newport — PODC 2013).
//!
//! The facade crate re-exports the workspace members under short module
//! names so applications can depend on a single crate:
//!
//! * [`graphs`] — graph/dual-graph representations and topology generators
//!   (dual clique, bracelet, geographic unit-disk graphs with a grey zone, …);
//! * [`sim`] — the synchronous dual-graph radio network execution engine with
//!   structurally enforced adversary capability classes;
//! * [`adversary`] — oblivious, online adaptive and offline adaptive link
//!   processes, including every attacker used in the paper's lower bounds;
//! * [`core`] — the broadcast algorithms (Decay, Permuted Decay, BGI, the
//!   geographic local broadcast) plus the β-hitting game and the Theorem 3.1
//!   reduction;
//! * [`analysis`] — the experiment harness reproducing Figure 1 (experiments
//!   E1–E8).
//!
//! # Quickstart
//!
//! ```
//! use dradio::prelude::*;
//!
//! // A 64-node network: two reliable cliques joined by one reliable bridge,
//! // every other pair connected by an unreliable link (the paper's "dual
//! // clique" lower-bound topology).
//! let dual = topology::dual_clique(64)?;
//!
//! // Global broadcast from node 0 with the paper's permuted-decay algorithm,
//! // against an adversary that flips every unreliable link on and off
//! // independently each round.
//! let problem = GlobalBroadcastProblem::new(NodeId::new(0));
//! let outcome = Simulator::new(
//!     dual.clone(),
//!     GlobalAlgorithm::Permuted.factory(dual.len(), dual.max_degree()),
//!     problem.assignment(dual.len()),
//!     Box::new(IidLinks::new(0.5)),
//!     SimConfig::default().with_seed(7).with_max_rounds(20_000),
//! )?
//! .run(problem.stop_condition());
//!
//! assert!(outcome.completed);
//! assert!(problem.verify(&dual, &outcome.history));
//! println!("broadcast finished in {} rounds", outcome.cost());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dradio_adversary as adversary;
pub use dradio_analysis as analysis;
pub use dradio_core as core;
pub use dradio_graphs as graphs;
pub use dradio_sim as sim;

/// A convenient set of the most commonly used items.
pub mod prelude {
    pub use dradio_adversary::{
        BraceletOblivious, DecayAwareOblivious, DenseSparseOnline, GilbertElliottLinks,
        GreedyCollisionOnline, IidLinks, OmniscientOffline, ScheduleLinks,
    };
    pub use dradio_analysis::experiments::{self, Experiment, ExperimentConfig};
    pub use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
    pub use dradio_core::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
    pub use dradio_graphs::{properties, topology, DualGraph, Graph, NodeId};
    pub use dradio_sim::{
        Action, AdversaryClass, Assignment, ExecutionOutcome, Feedback, LinkProcess, Message,
        MessageKind, Process, ProcessContext, ProcessFactory, Role, Round, SimConfig, Simulator,
        StaticLinks, StopCondition,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        let dual = topology::dual_clique(8).unwrap();
        assert_eq!(dual.len(), 8);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        assert_eq!(problem.source(), NodeId::new(0));
        let _ = GlobalAlgorithm::all();
        let _ = LocalAlgorithm::all();
        let _ = ExperimentConfig::smoke();
    }
}
