//! Integration tests for bit-sliced batch trial execution: every batchable
//! registered algorithm × adversary × problem class must produce outcomes
//! identical to the scalar trial path, trial for trial, and ragged lane
//! groups (1–63 live lanes) must behave exactly like full words.

use dradio::prelude::*;
use proptest::prelude::*;

/// Every oblivious (batchable) adversary spec over a dual clique, including
/// the schedule- and algorithm-aware ones.
fn oblivious_adversaries(n: usize) -> Vec<(&'static str, AdversarySpec)> {
    vec![
        ("static-none", AdversarySpec::StaticNone),
        ("static-all", AdversarySpec::StaticAll),
        ("iid", AdversarySpec::Iid { p: 0.5 }),
        (
            "gilbert-elliott",
            AdversarySpec::GilbertElliott {
                p_fail: 0.3,
                p_recover: 0.4,
            },
        ),
        (
            "schedule",
            AdversarySpec::Schedule {
                rounds: vec![vec![(0, n / 2)], vec![], vec![(1, n / 2 + 1), (0, n / 2)]],
            },
        ),
        (
            "decay-aware",
            AdversarySpec::DecayAware {
                levels: None,
                assumed_transmitters: (0..n / 2).collect(),
            },
        ),
    ]
}

/// Batch and scalar runners must agree outcome-for-outcome on `trials`
/// trials, and the batch runner must actually take the batch path.
fn assert_batch_matches_scalar(label: &str, scenario: &Scenario, trials: usize) {
    let scalar = ScenarioRunner::new(scenario).sequential();
    let batched = scalar.batch(true);
    assert!(
        batched.uses_batch(),
        "{label}: expected the batch path (oblivious adversary, no history)"
    );
    assert_eq!(
        batched.collect_trials(trials).unwrap(),
        scalar.collect_trials(trials).unwrap(),
        "{label}: batch and scalar trial outcomes diverged"
    );
}

#[test]
fn every_batchable_global_combination_matches_scalar() {
    let n = 16;
    for algorithm in GlobalAlgorithm::all() {
        for (name, adversary) in oblivious_adversaries(n) {
            let scenario = Scenario::on(TopologySpec::DualClique { n })
                .algorithm(algorithm)
                .adversary(adversary)
                .problem(ProblemSpec::GlobalFrom(0))
                .seed(11)
                .max_rounds(400)
                .build()
                .expect("valid scenario");
            assert_batch_matches_scalar(&format!("{algorithm:?}/{name}/global"), &scenario, 9);
        }
    }
}

#[test]
fn every_batchable_local_combination_matches_scalar() {
    for algorithm in LocalAlgorithm::all() {
        let scenario = Scenario::on(TopologySpec::RandomGeometric {
            n: 24,
            side: 2.0,
            r: 1.5,
            seed: 5,
        })
        .algorithm(algorithm)
        .adversary(AdversarySpec::Iid { p: 0.5 })
        .problem(ProblemSpec::LocalRandom { count: 4, seed: 6 })
        .seed(12)
        .max_rounds(400)
        .build()
        .expect("dense deployments connect");
        assert_batch_matches_scalar(&format!("{algorithm:?}/iid/local"), &scenario, 9);
    }
}

#[test]
fn bracelet_attack_batches_and_matches_scalar() {
    let scenario = Scenario::on(TopologySpec::Bracelet { k: 3 })
        .algorithm(LocalAlgorithm::StaticDecay)
        .adversary(AdversarySpec::BraceletAttack)
        .problem(ProblemSpec::LocalHeadsA)
        .seed(13)
        .max_rounds(300)
        .build()
        .expect("valid scenario");
    assert_batch_matches_scalar("static-decay/bracelet-attack/local", &scenario, 9);
}

#[test]
fn batch_measurements_agree_with_and_without_curves() {
    let scenario = Scenario::on(TopologySpec::DualClique { n: 16 })
        .algorithm(GlobalAlgorithm::Permuted)
        .adversary(AdversarySpec::Iid { p: 0.5 })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(14)
        .max_rounds(400)
        .build()
        .expect("valid scenario");
    let scalar = ScenarioRunner::new(&scenario);
    let batched = scalar.batch(true);
    assert_eq!(
        batched.run_trials(70).unwrap(),
        scalar.run_trials(70).unwrap()
    );
    assert_eq!(
        batched.curve(true).run_trials(70).unwrap(),
        scalar.curve(true).run_trials(70).unwrap(),
        "curve streaming over lane groups must fold like the scalar loop"
    );
}

#[test]
fn adaptive_adversaries_and_full_recording_fall_back_to_scalar() {
    let adaptive = Scenario::on(TopologySpec::DualClique { n: 12 })
        .algorithm(GlobalAlgorithm::Permuted)
        .adversary(AdversarySpec::DenseSparse {
            density_factor: None,
        })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(15)
        .max_rounds(400)
        .build()
        .expect("valid scenario");
    let runner = ScenarioRunner::new(&adaptive).batch(true);
    assert!(runner.has_batch());
    assert!(!runner.uses_batch(), "adaptive adversaries cannot batch");
    assert_eq!(
        runner.collect_trials(5).unwrap(),
        ScenarioRunner::new(&adaptive).collect_trials(5).unwrap()
    );

    let oblivious = Scenario::on(TopologySpec::DualClique { n: 12 })
        .algorithm(GlobalAlgorithm::Permuted)
        .adversary(AdversarySpec::Iid { p: 0.5 })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(16)
        .max_rounds(400)
        .build()
        .expect("valid scenario");
    let full = ScenarioRunner::new(&oblivious)
        .batch(true)
        .record_mode(RecordMode::Full);
    assert!(!full.uses_batch(), "history recording cannot batch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged lane groups: any trial count — below one word, exactly one
    /// word, or a full word plus a ragged tail — matches the scalar path
    /// outcome for outcome.
    #[test]
    fn ragged_lane_groups_match_scalar(
        n in 8usize..20,
        trials in 1usize..150,
        seed in 0u64..500,
    ) {
        let scenario = Scenario::on(TopologySpec::DualClique { n: 2 * (n / 2) })
            .algorithm(GlobalAlgorithm::Permuted)
            .adversary(AdversarySpec::Iid { p: 0.5 })
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(200)
            .build()
            .expect("valid scenario");
        let scalar = ScenarioRunner::new(&scenario).sequential();
        let batched = scalar.batch(true);
        prop_assert!(batched.uses_batch());
        prop_assert_eq!(
            batched.collect_trials(trials).unwrap(),
            scalar.collect_trials(trials).unwrap()
        );
    }
}
