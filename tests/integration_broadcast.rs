//! Cross-crate integration tests: every algorithm × adversary class × topology
//! combination that the paper's Figure 1 speaks about, at small scale.

use dradio::prelude::*;
use dradio::graphs::topology::GeometricConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run_global(
    dual: &DualGraph,
    algorithm: GlobalAlgorithm,
    link: Box<dyn LinkProcess>,
    max_rounds: usize,
    seed: u64,
) -> (ExecutionOutcome, GlobalBroadcastProblem) {
    let problem = GlobalBroadcastProblem::new(NodeId::new(0));
    let outcome = Simulator::new(
        dual.clone(),
        algorithm.factory(dual.len(), dual.max_degree()),
        problem.assignment(dual.len()),
        link,
        SimConfig::default().with_seed(seed).with_max_rounds(max_rounds),
    )
    .expect("valid simulation")
    .run(problem.stop_condition());
    (outcome, problem)
}

fn run_local(
    dual: &DualGraph,
    algorithm: LocalAlgorithm,
    broadcasters: Vec<NodeId>,
    link: Box<dyn LinkProcess>,
    max_rounds: usize,
    seed: u64,
) -> (ExecutionOutcome, LocalBroadcastProblem) {
    let problem = LocalBroadcastProblem::new(broadcasters);
    let outcome = Simulator::new(
        dual.clone(),
        algorithm.factory(dual.len(), dual.max_degree()),
        problem.assignment(dual.len()),
        link,
        SimConfig::default().with_seed(seed).with_max_rounds(max_rounds),
    )
    .expect("valid simulation")
    .run(problem.stop_condition(dual));
    (outcome, problem)
}

#[test]
fn every_global_algorithm_completes_under_benign_oblivious_adversaries() {
    let dual = topology::dual_clique(32).unwrap();
    for algorithm in GlobalAlgorithm::all() {
        for adversary in ["none", "all", "iid"] {
            let link: Box<dyn LinkProcess> = match adversary {
                "none" => Box::new(StaticLinks::none()),
                "all" => Box::new(StaticLinks::all()),
                _ => Box::new(IidLinks::new(0.5)),
            };
            let (outcome, problem) = run_global(&dual, algorithm, link, 20_000, 3);
            assert!(outcome.completed, "{algorithm} under {adversary} did not complete");
            assert!(problem.verify(&dual, &outcome.history), "{algorithm} under {adversary} incorrect");
        }
    }
}

#[test]
fn every_local_algorithm_completes_on_geographic_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let dual = topology::random_geometric(&GeometricConfig::new(60, 2.7, 1.5), &mut rng).unwrap();
    let n = dual.len();
    let broadcasters: Vec<NodeId> = (0..n).step_by(4).map(NodeId::new).collect();
    for algorithm in LocalAlgorithm::all() {
        let (outcome, problem) = run_local(
            &dual,
            algorithm,
            broadcasters.clone(),
            Box::new(GilbertElliottLinks::new(0.1, 0.2)),
            40 * n + 4_000,
            5,
        );
        assert!(outcome.completed, "{algorithm} did not complete on the geometric graph");
        assert!(problem.verify(&dual, &outcome.history), "{algorithm} incorrect");
    }
}

#[test]
fn online_adaptive_attack_separates_dual_clique_from_static_model() {
    // The headline separation of Figure 1 row 2: the same algorithm on the
    // same (constant-diameter) topology is polylog under no dynamic links but
    // slows dramatically under the online adaptive dense/sparse attacker.
    let n = 64;
    let dual = topology::dual_clique(n).unwrap();
    let (benign, _) = run_global(&dual, GlobalAlgorithm::Permuted, Box::new(StaticLinks::none()), 60_000, 7);
    let (attacked, _) =
        run_global(&dual, GlobalAlgorithm::Permuted, Box::new(DenseSparseOnline::default()), 60_000, 7);
    assert!(benign.completed);
    assert!(
        attacked.cost() >= 3 * benign.cost(),
        "online adaptive attack should slow broadcast down substantially (benign {}, attacked {})",
        benign.cost(),
        attacked.cost()
    );
}

#[test]
fn offline_adaptive_is_at_least_as_strong_as_online_adaptive() {
    let n = 32;
    let dual = topology::dual_clique(n).unwrap();
    let (online, _) =
        run_global(&dual, GlobalAlgorithm::Bgi, Box::new(DenseSparseOnline::default()), 40_000, 9);
    let (offline, _) =
        run_global(&dual, GlobalAlgorithm::Bgi, Box::new(OmniscientOffline::new()), 40_000, 9);
    // Both attacks slow the algorithm well past the benign polylog cost.
    let (benign, _) = run_global(&dual, GlobalAlgorithm::Bgi, Box::new(StaticLinks::none()), 40_000, 9);
    assert!(online.cost() > benign.cost());
    assert!(offline.cost() > benign.cost());
}

#[test]
fn round_robin_is_immune_to_every_adversary() {
    // Deterministic round robin never has two simultaneous transmitters, so
    // no adversary class can create collisions; it completes within n rounds
    // per hop regardless.
    let n = 24;
    let dual = topology::dual_clique(n).unwrap();
    for adversary in ["none", "all", "iid", "online", "offline"] {
        let link: Box<dyn LinkProcess> = match adversary {
            "none" => Box::new(StaticLinks::none()),
            "all" => Box::new(StaticLinks::all()),
            "iid" => Box::new(IidLinks::new(0.5)),
            "online" => Box::new(DenseSparseOnline::default()),
            _ => Box::new(OmniscientOffline::new()),
        };
        let (outcome, problem) = run_global(&dual, GlobalAlgorithm::RoundRobin, link, 10 * n * n, 13);
        assert!(outcome.completed, "round robin under {adversary} did not complete");
        assert!(problem.verify(&dual, &outcome.history));
        assert_eq!(outcome.metrics.collisions, 0, "round robin collided under {adversary}");
    }
}

#[test]
fn bracelet_attack_starves_the_clasp_longer_than_benign_links() {
    let bracelet = dradio::graphs::topology::bracelet(4).unwrap();
    let dual = bracelet.dual().clone();
    let n = dual.len();
    let heads = bracelet.heads_a();
    let (benign, _) = run_local(
        &dual,
        LocalAlgorithm::StaticDecay,
        heads.clone(),
        Box::new(StaticLinks::none()),
        40 * n + 300,
        17,
    );
    let (attacked, _) = run_local(
        &dual,
        LocalAlgorithm::StaticDecay,
        heads,
        Box::new(BraceletOblivious::new(&bracelet)),
        40 * n + 300,
        17,
    );
    assert!(benign.completed);
    assert!(
        attacked.cost() as f64 >= benign.cost() as f64,
        "bracelet attack should not make local broadcast faster (benign {}, attacked {})",
        benign.cost(),
        attacked.cost()
    );
}

#[test]
fn executions_are_reproducible_end_to_end() {
    let dual = topology::dual_clique(32).unwrap();
    let run = || {
        let (outcome, _) =
            run_global(&dual, GlobalAlgorithm::Permuted, Box::new(IidLinks::new(0.4)), 20_000, 99);
        (outcome.cost(), outcome.metrics)
    };
    assert_eq!(run(), run());
}

#[test]
fn geographic_constraint_holds_for_generated_deployments() {
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        if let Ok(dual) =
            topology::random_geometric(&GeometricConfig::new(40, 2.5, 1.5), &mut rng)
        {
            assert!(dual.satisfies_geographic_constraint(1.5).unwrap());
            let regions = dradio::graphs::RegionDecomposition::build(&dual, 1.5).unwrap();
            assert!(regions.max_region_neighbors() <= dradio::graphs::RegionDecomposition::gamma_bound(1.5));
        }
    }
}
