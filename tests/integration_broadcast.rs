//! Cross-crate integration tests: every algorithm × adversary class × topology
//! combination that the paper's Figure 1 speaks about, at small scale — all
//! constructed through the declarative `Scenario` API.

use dradio::prelude::*;

fn global_scenario(
    topology: TopologySpec,
    algorithm: GlobalAlgorithm,
    adversary: AdversarySpec,
    max_rounds: usize,
    seed: u64,
) -> Scenario {
    Scenario::on(topology)
        .algorithm(algorithm)
        .adversary(adversary)
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(seed)
        .max_rounds(max_rounds)
        .build()
        .expect("valid scenario")
}

fn local_scenario(
    topology: TopologySpec,
    algorithm: LocalAlgorithm,
    problem: ProblemSpec,
    adversary: AdversarySpec,
    max_rounds: usize,
    seed: u64,
) -> Scenario {
    Scenario::on(topology)
        .algorithm(algorithm)
        .adversary(adversary)
        .problem(problem)
        .seed(seed)
        .max_rounds(max_rounds)
        .build()
        .expect("valid scenario")
}

#[test]
fn every_global_algorithm_completes_under_benign_oblivious_adversaries() {
    for algorithm in GlobalAlgorithm::all() {
        for adversary in [
            AdversarySpec::StaticNone,
            AdversarySpec::StaticAll,
            AdversarySpec::Iid { p: 0.5 },
        ] {
            let scenario = global_scenario(
                TopologySpec::DualClique { n: 32 },
                algorithm,
                adversary.clone(),
                20_000,
                3,
            );
            let outcome = scenario.run();
            assert!(
                outcome.completed,
                "{algorithm} under {} did not complete",
                adversary.label()
            );
            assert!(
                scenario.verify(&outcome.history),
                "{algorithm} under {} incorrect",
                adversary.label()
            );
        }
    }
}

#[test]
fn every_local_algorithm_completes_on_geographic_graphs() {
    let deployment = TopologySpec::RandomGeometric {
        n: 60,
        side: 2.7,
        r: 1.5,
        seed: 11,
    };
    // A fixed quarter of the nodes broadcast.
    let broadcasters: Vec<usize> = (0..60).step_by(4).collect();
    for algorithm in LocalAlgorithm::all() {
        let scenario = local_scenario(
            deployment.clone(),
            algorithm,
            ProblemSpec::Local {
                broadcasters: broadcasters.clone(),
            },
            AdversarySpec::GilbertElliott {
                p_fail: 0.1,
                p_recover: 0.2,
            },
            40 * 60 + 4_000,
            5,
        );
        let outcome = scenario.run();
        assert!(
            outcome.completed,
            "{algorithm} did not complete on the geometric graph"
        );
        assert!(scenario.verify(&outcome.history), "{algorithm} incorrect");
    }
}

#[test]
fn online_adaptive_attack_separates_dual_clique_from_static_model() {
    // The headline separation of Figure 1 row 2: the same algorithm on the
    // same (constant-diameter) topology is polylog under no dynamic links but
    // slows dramatically under the online adaptive dense/sparse attacker.
    let n = 64;
    let benign = global_scenario(
        TopologySpec::DualClique { n },
        GlobalAlgorithm::Permuted,
        AdversarySpec::StaticNone,
        60_000,
        7,
    )
    .run();
    let attacked = global_scenario(
        TopologySpec::DualClique { n },
        GlobalAlgorithm::Permuted,
        AdversarySpec::DenseSparse {
            density_factor: None,
        },
        60_000,
        7,
    )
    .run();
    assert!(benign.completed);
    assert!(
        attacked.cost() >= 3 * benign.cost(),
        "online adaptive attack should slow broadcast down substantially (benign {}, attacked {})",
        benign.cost(),
        attacked.cost()
    );
}

#[test]
fn offline_adaptive_is_at_least_as_strong_as_online_adaptive() {
    let n = 32;
    let run = |adversary: AdversarySpec| {
        global_scenario(
            TopologySpec::DualClique { n },
            GlobalAlgorithm::Bgi,
            adversary,
            40_000,
            9,
        )
        .run()
    };
    let online = run(AdversarySpec::DenseSparse {
        density_factor: None,
    });
    let offline = run(AdversarySpec::Omniscient);
    // Both attacks slow the algorithm well past the benign polylog cost.
    let benign = run(AdversarySpec::StaticNone);
    assert!(online.cost() > benign.cost());
    assert!(offline.cost() > benign.cost());
}

#[test]
fn round_robin_is_immune_to_every_adversary() {
    // Deterministic round robin never has two simultaneous transmitters, so
    // no adversary class can create collisions; it completes within n rounds
    // per hop regardless.
    let n = 24;
    for adversary in [
        AdversarySpec::StaticNone,
        AdversarySpec::StaticAll,
        AdversarySpec::Iid { p: 0.5 },
        AdversarySpec::DenseSparse {
            density_factor: None,
        },
        AdversarySpec::Omniscient,
    ] {
        let scenario = global_scenario(
            TopologySpec::DualClique { n },
            GlobalAlgorithm::RoundRobin,
            adversary.clone(),
            10 * n * n,
            13,
        );
        let outcome = scenario.run();
        assert!(
            outcome.completed,
            "round robin under {} did not complete",
            adversary.label()
        );
        assert!(scenario.verify(&outcome.history));
        assert_eq!(
            outcome.metrics.collisions,
            0,
            "round robin collided under {}",
            adversary.label()
        );
    }
}

#[test]
fn bracelet_attack_starves_the_clasp_longer_than_benign_links() {
    let k = 4;
    let n = 2 * k * k;
    let run = |adversary: AdversarySpec| {
        local_scenario(
            TopologySpec::Bracelet { k },
            LocalAlgorithm::StaticDecay,
            ProblemSpec::LocalHeadsA,
            adversary,
            40 * n + 300,
            17,
        )
        .run()
    };
    let benign = run(AdversarySpec::StaticNone);
    let attacked = run(AdversarySpec::BraceletAttack);
    assert!(benign.completed);
    assert!(
        attacked.cost() as f64 >= benign.cost() as f64,
        "bracelet attack should not make local broadcast faster (benign {}, attacked {})",
        benign.cost(),
        attacked.cost()
    );
}

#[test]
fn executions_are_reproducible_end_to_end() {
    let run = || {
        let outcome = global_scenario(
            TopologySpec::DualClique { n: 32 },
            GlobalAlgorithm::Permuted,
            AdversarySpec::Iid { p: 0.4 },
            20_000,
            99,
        )
        .run();
        (outcome.cost(), outcome.metrics)
    };
    assert_eq!(run(), run());
}

#[test]
fn geographic_constraint_holds_for_generated_deployments() {
    for seed in 0..5u64 {
        let spec = TopologySpec::RandomGeometric {
            n: 40,
            side: 2.5,
            r: 1.5,
            seed,
        };
        if let Ok(built) = spec.build() {
            let dual = &built.dual;
            assert!(dual.satisfies_geographic_constraint(1.5).unwrap());
            let regions = dradio::graphs::RegionDecomposition::build(dual, 1.5).unwrap();
            assert!(
                regions.max_region_neighbors()
                    <= dradio::graphs::RegionDecomposition::gamma_bound(1.5)
            );
        }
    }
}
