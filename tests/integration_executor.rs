//! Executor-reuse equivalence across the entire registry: a single
//! [`TrialExecutor`] executing many seeds produces, for every registered
//! algorithm × adversary × problem spec class (and the custom escape
//! hatches), byte-for-byte the same [`ExecutionOutcome`] a fresh
//! single-shot simulator produces for each seed. Reuse is an amortization
//! decision, never a behavioural one; this suite is the proof the scenario
//! runner and the campaign layer lean on when they fan trials out over
//! per-worker executors.

use dradio::prelude::*;

const TRIALS: usize = 3;

/// Every declarative adversary spec that builds on a plain dual clique /
/// geometric topology (the bracelet attack needs bracelet metadata and gets
/// its own combination below).
fn general_adversaries() -> Vec<AdversarySpec> {
    vec![
        AdversarySpec::StaticNone,
        AdversarySpec::StaticAll,
        AdversarySpec::Iid { p: 0.5 },
        AdversarySpec::GilbertElliott {
            p_fail: 0.2,
            p_recover: 0.3,
        },
        AdversarySpec::Schedule {
            rounds: vec![vec![(0, 9)], vec![]],
        },
        AdversarySpec::DecayAware {
            levels: None,
            assumed_transmitters: vec![0, 1],
        },
        AdversarySpec::DenseSparse {
            density_factor: None,
        },
        AdversarySpec::GreedyCollision,
        AdversarySpec::Omniscient,
    ]
}

/// Every (algorithm spec × problem spec class) combination on a topology
/// that supports it, crossed later with every adversary.
fn algorithm_problem_topologies() -> Vec<(AlgorithmSpec, ProblemSpec, TopologySpec)> {
    let mut combos: Vec<(AlgorithmSpec, ProblemSpec, TopologySpec)> = Vec::new();
    for algorithm in GlobalAlgorithm::all() {
        combos.push((
            algorithm.into(),
            ProblemSpec::GlobalFrom(0),
            TopologySpec::DualClique { n: 16 },
        ));
    }
    for algorithm in LocalAlgorithm::all() {
        combos.push((
            algorithm.into(),
            ProblemSpec::Local {
                broadcasters: vec![0, 3, 9],
            },
            TopologySpec::DualClique { n: 16 },
        ));
        combos.push((
            algorithm.into(),
            ProblemSpec::LocalRandom { count: 4, seed: 5 },
            TopologySpec::RandomGeometric {
                n: 24,
                side: 2.0,
                r: 1.5,
                seed: 11,
            },
        ));
        combos.push((
            algorithm.into(),
            ProblemSpec::LocalSideA,
            TopologySpec::DualCliqueWithBridge {
                n: 16,
                t_a: 2,
                t_b: 11,
            },
        ));
    }
    combos
}

/// One reused executor, every record mode, several seeds — each execution
/// must equal the corresponding fresh single-shot run outcome for outcome.
/// Interleaving modes on the same executor also proves trial results do not
/// depend on what the executor ran before.
fn assert_executor_matches_fresh(label: &str, scenario: &Scenario) {
    let runner = scenario.runner();
    let mut executor = scenario.executor();
    for mode in [RecordMode::None, RecordMode::Full] {
        for trial in 0..TRIALS {
            let seed = runner.trial_seed(trial);
            let reused = executor.execute(seed, mode);
            let fresh = scenario.run_with(seed, mode);
            assert_eq!(
                reused, fresh,
                "{label}: trial {trial} under {mode} diverged between the reused executor \
                 and a fresh simulator"
            );
        }
    }
}

#[test]
fn every_algorithm_adversary_problem_combination_executes_identically() {
    for (algorithm, problem, topology) in algorithm_problem_topologies() {
        for adversary in general_adversaries() {
            let label = format!(
                "{} × {} × {}",
                algorithm.name(),
                adversary.label(),
                problem.label()
            );
            let scenario = Scenario::on(topology.clone())
                .algorithm(algorithm.clone())
                .adversary(adversary.clone())
                .problem(problem.clone())
                .seed(47)
                .max_rounds(400)
                .build()
                .unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
            assert_executor_matches_fresh(&label, &scenario);
        }
    }
}

#[test]
fn bracelet_attack_combination_executes_identically() {
    let scenario = Scenario::on(TopologySpec::Bracelet { k: 3 })
        .algorithm(LocalAlgorithm::StaticDecay)
        .adversary(AdversarySpec::BraceletAttack)
        .problem(ProblemSpec::LocalHeadsA)
        .seed(47)
        .max_rounds(400)
        .build()
        .expect("bracelet scenario builds");
    assert_executor_matches_fresh("static-decay × bracelet-attack × local-heads-a", &scenario);
}

#[test]
fn custom_components_execute_identically() {
    // The escape hatches: a hand-written process factory and a hand-written
    // link recipe (which does not override `reset`, so the executor must
    // fall back to rebuilding it per trial).
    use dradio::sim::sampling::bernoulli;
    use rand::RngCore;
    use std::sync::Arc;

    struct Chatter {
        msg: Message,
    }
    impl Process for Chatter {
        fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
            if bernoulli(rng, 0.3) {
                Action::Transmit(self.msg.clone())
            } else {
                Action::Listen
            }
        }
        fn transmit_probability(&self, _round: Round) -> f64 {
            0.3
        }
    }
    let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
        Box::new(Chatter {
            msg: Message::plain(ctx.id, MessageKind::new(7), 0),
        }) as Box<dyn Process>
    });
    let scenario = Scenario::on(TopologySpec::DualClique { n: 12 })
        .custom_algorithm("chatter", factory)
        .custom_adversary("all-links", || Box::new(StaticLinks::all()))
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(9)
        .max_rounds(400)
        .build()
        .expect("custom scenario builds");
    assert_executor_matches_fresh("chatter × all-links × global-from(0)", &scenario);
}

#[test]
fn adaptive_adversaries_promote_on_reused_executors_too() {
    // The auto-promotion rule is per execution, not per executor: even when
    // the executor is asked for RecordMode::None, an adaptive adversary
    // class forces full recording — on the first trial and on every reused
    // one.
    let scenario = Scenario::on(TopologySpec::DualClique { n: 16 })
        .algorithm(GlobalAlgorithm::Permuted)
        .adversary(AdversarySpec::DenseSparse {
            density_factor: None,
        })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(5)
        .max_rounds(400)
        .build()
        .expect("adaptive scenario builds");
    let runner = scenario.runner();
    let mut executor = scenario.executor();
    for trial in 0..TRIALS {
        let outcome = executor.execute(runner.trial_seed(trial), RecordMode::None);
        assert_eq!(
            outcome.record_mode,
            RecordMode::Full,
            "trial {trial}: adaptive adversary must promote to full recording"
        );
        assert_eq!(outcome.history.len(), outcome.rounds_executed);
    }
}

#[test]
fn parallel_fan_out_equals_fresh_per_trial_measurements() {
    // End to end: the runner's executor-per-worker fan-out (parallel and
    // sequential) aggregates to exactly the measurement obtained from one
    // fresh simulator per trial.
    let scenario = Scenario::on(TopologySpec::DualClique { n: 16 })
        .algorithm(GlobalAlgorithm::Permuted)
        .adversary(AdversarySpec::Iid { p: 0.5 })
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(29)
        .max_rounds(20_000)
        .build()
        .expect("valid scenario");
    let runner = scenario.runner();
    let trials = 8;
    let fresh: Vec<_> = (0..trials).map(|t| runner.run_trial(t)).collect();
    assert_eq!(runner.collect_trials(trials).unwrap(), fresh);
    assert_eq!(runner.sequential().collect_trials(trials).unwrap(), fresh);
    assert_eq!(
        scenario.run_trials(trials).unwrap(),
        Measurement::from_trials(&fresh).unwrap()
    );
}
