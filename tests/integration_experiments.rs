//! Integration tests for the experiment harness: every experiment runs at
//! smoke scale and its tables carry the structure EXPERIMENTS.md documents.

use dradio::prelude::*;

#[test]
fn the_registry_covers_every_figure1_row() {
    let ids: Vec<&str> = experiments::all().iter().map(|e| e.id()).collect();
    assert_eq!(ids, vec!["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"]);
}

#[test]
fn experiment_tables_render_and_export_csv() {
    let cfg = ExperimentConfig::smoke();
    // E7 is the cheapest experiment; use it to check the table plumbing.
    let e7 = &experiments::all()[6];
    assert_eq!(e7.id(), "E7");
    let tables = e7.run(&cfg).expect("E7 runs at smoke scale");
    assert!(!tables.is_empty());
    for table in &tables {
        let rendered = table.render();
        assert!(rendered.contains(table.title()));
        let csv = table.to_csv();
        assert!(csv.lines().count() > table.rows().len());
        // Every row has the same number of columns as the header.
        for row in table.rows() {
            assert_eq!(row.len(), table.headers().len());
        }
    }
}

#[test]
fn paper_claims_reference_the_right_bounds() {
    let experiments = experiments::all();
    let claim = |id: &str| {
        experiments
            .iter()
            .find(|e| e.id() == id)
            .map(|e| e.paper_claim().to_string())
            .unwrap_or_default()
    };
    assert!(claim("E1").contains("log^2 n"));
    assert!(claim("E2").contains("O(D log n + log^2 n)"));
    assert!(claim("E3").contains("sqrt"));
    assert!(claim("E4").contains("log^2 n log Delta"));
    assert!(claim("E5").contains("n / log n"));
    assert!(claim("E6").contains("Omega(n)"));
    assert!(claim("E7").contains("k/(beta-1)"));
    assert!(claim("E8").contains("1/2"));
}

/// The campaign engine reproduces the exact measurements the scenario runner
/// produces directly — the regression guard for the experiments' rewrite onto
/// campaigns: same specs + same seeds + same trial counts ⇒ same
/// `Measurement`s, whichever engine executes them.
#[test]
fn campaign_engine_reproduces_direct_scenario_measurements() {
    let cfg = ExperimentConfig::smoke();
    // The same cells E1a measures at smoke scale, hand-rolled the
    // pre-campaign way: one Scenario + ScenarioRunner per (n, algorithm).
    let sizes = [16usize, 32];
    let algorithms = [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted];

    let campaign = CampaignSpec::named("e1a-equivalence")
        .seed(cfg.seed)
        .trials(TrialPolicy::Fixed(cfg.trials))
        .group(
            SweepGroup::product(
                sizes.iter().map(|&n| TopologySpec::Clique { n }).collect(),
                algorithms.iter().map(|&a| a.into()).collect(),
                vec![AdversarySpec::StaticNone],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::PerNode {
                per_node: 200,
                base: 0,
                min_nodes: 16,
            }),
        );
    let store = CampaignRunner::new(&campaign)
        .run_in_memory()
        .expect("campaign runs");

    for &n in &sizes {
        for algorithm in algorithms {
            let scenario = Scenario::on(TopologySpec::Clique { n })
                .algorithm(algorithm)
                .adversary(AdversarySpec::StaticNone)
                .problem(ProblemSpec::GlobalFrom(0))
                .seed(cfg.seed)
                .max_rounds(200 * n.max(16))
                .build()
                .expect("valid scenario");
            let direct = scenario.run_trials(cfg.trials).expect("trials run");
            let stored = store
                .for_scenario(scenario.spec())
                .unwrap_or_else(|| panic!("no stored cell for n = {n}"));
            assert_eq!(
                stored.measurement,
                direct,
                "campaign and direct measurements diverged for n = {n}, {}",
                algorithm.name()
            );
            assert_eq!(stored.trials_run, cfg.trials);
        }
    }
}

#[test]
fn growth_model_fitting_distinguishes_the_key_shapes() {
    use dradio::analysis::{best_fit, GrowthModel};
    // The separation the reproduction hinges on: polylog vs n/log n.
    let polylog: Vec<(f64, f64)> = [64.0, 128.0, 256.0, 512.0, 1024.0]
        .iter()
        .map(|&n: &f64| (n, 3.0 * n.log2() * n.log2()))
        .collect();
    let nearly_linear: Vec<(f64, f64)> = [64.0, 128.0, 256.0, 512.0, 1024.0]
        .iter()
        .map(|&n: &f64| (n, 0.8 * n / n.log2()))
        .collect();
    assert_eq!(best_fit(&polylog).unwrap().model, GrowthModel::LogSquared);
    assert_eq!(
        best_fit(&nearly_linear).unwrap().model,
        GrowthModel::LinearOverLog
    );
}
