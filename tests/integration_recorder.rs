//! Record-mode equivalence across the entire registry: for every registered
//! algorithm × adversary × problem spec class, the [`Measurement`] (and the
//! per-trial outcomes behind it) under `RecordMode::None` is identical to
//! `RecordMode::Full` with the same seeds and trial counts. Recording is a
//! retention decision, never a behavioural one; this suite is the proof the
//! campaign layer leans on when it runs every cell history-free.

use dradio::prelude::*;

const TRIALS: usize = 3;

/// Every declarative adversary spec that builds on a plain dual clique /
/// geometric topology (the bracelet attack needs bracelet metadata and gets
/// its own combination below).
fn general_adversaries() -> Vec<AdversarySpec> {
    vec![
        AdversarySpec::StaticNone,
        AdversarySpec::StaticAll,
        AdversarySpec::Iid { p: 0.5 },
        AdversarySpec::GilbertElliott {
            p_fail: 0.2,
            p_recover: 0.3,
        },
        AdversarySpec::Schedule {
            rounds: vec![vec![(0, 9)], vec![]],
        },
        AdversarySpec::DecayAware {
            levels: None,
            assumed_transmitters: vec![0, 1],
        },
        AdversarySpec::DenseSparse {
            density_factor: None,
        },
        AdversarySpec::GreedyCollision,
        AdversarySpec::Omniscient,
    ]
}

/// Every (algorithm spec × problem spec class) combination on a topology
/// that supports it, crossed later with every adversary.
fn algorithm_problem_topologies() -> Vec<(AlgorithmSpec, ProblemSpec, TopologySpec)> {
    let mut combos: Vec<(AlgorithmSpec, ProblemSpec, TopologySpec)> = Vec::new();
    // Global algorithms × the global problem class.
    for algorithm in GlobalAlgorithm::all() {
        combos.push((
            algorithm.into(),
            ProblemSpec::GlobalFrom(0),
            TopologySpec::DualClique { n: 16 },
        ));
    }
    // Local algorithms × every local problem class. Explicit and sampled
    // broadcaster sets run on the dual clique; the side-A class needs the
    // bridge-carrying variant; the geographic deployment exercises networks
    // with an embedding.
    for algorithm in LocalAlgorithm::all() {
        combos.push((
            algorithm.into(),
            ProblemSpec::Local {
                broadcasters: vec![0, 3, 9],
            },
            TopologySpec::DualClique { n: 16 },
        ));
        combos.push((
            algorithm.into(),
            ProblemSpec::LocalRandom { count: 4, seed: 5 },
            TopologySpec::RandomGeometric {
                n: 24,
                side: 2.0,
                r: 1.5,
                seed: 11,
            },
        ));
        combos.push((
            algorithm.into(),
            ProblemSpec::LocalSideA,
            TopologySpec::DualCliqueWithBridge {
                n: 16,
                t_a: 2,
                t_b: 11,
            },
        ));
    }
    combos
}

fn assert_modes_agree(label: &str, scenario: &Scenario) {
    let runner = ScenarioRunner::new(scenario);
    let fast = runner
        .collect_trials(TRIALS)
        .unwrap_or_else(|e| panic!("{label}: fast trials failed: {e}"));
    let full = runner
        .record_mode(RecordMode::Full)
        .collect_trials(TRIALS)
        .unwrap_or_else(|e| panic!("{label}: full trials failed: {e}"));
    assert_eq!(
        fast, full,
        "{label}: trial outcomes diverged between RecordMode::None and Full"
    );
    let fast_measurement = Measurement::from_trials(&fast).expect("non-empty");
    let full_measurement = Measurement::from_trials(&full).expect("non-empty");
    assert_eq!(
        fast_measurement, full_measurement,
        "{label}: measurements diverged between RecordMode::None and Full"
    );
}

#[test]
fn every_algorithm_adversary_problem_combination_measures_identically() {
    for (algorithm, problem, topology) in algorithm_problem_topologies() {
        for adversary in general_adversaries() {
            let label = format!(
                "{} × {} × {}",
                algorithm.name(),
                adversary.label(),
                problem.label()
            );
            let scenario = Scenario::on(topology.clone())
                .algorithm(algorithm.clone())
                .adversary(adversary.clone())
                .problem(problem.clone())
                .seed(31)
                .max_rounds(600)
                .build()
                .unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
            assert_modes_agree(&label, &scenario);
        }
    }
}

#[test]
fn bracelet_attack_combination_measures_identically() {
    // The remaining registered adversary: the bracelet attacker, on the only
    // problem/topology class it is defined for.
    let scenario = Scenario::on(TopologySpec::Bracelet { k: 3 })
        .algorithm(LocalAlgorithm::StaticDecay)
        .adversary(AdversarySpec::BraceletAttack)
        .problem(ProblemSpec::LocalHeadsA)
        .seed(31)
        .max_rounds(600)
        .build()
        .expect("bracelet scenario builds");
    assert_modes_agree("static-decay × bracelet-attack × local-heads-a", &scenario);
}

#[test]
fn custom_components_measure_identically() {
    // The escape-hatch classes (custom algorithm + custom adversary) go
    // through the same engine; pin them too.
    use dradio::sim::sampling::bernoulli;
    use rand::RngCore;
    use std::sync::Arc;

    struct Chatter {
        msg: Message,
    }
    impl Process for Chatter {
        fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
            if bernoulli(rng, 0.3) {
                Action::Transmit(self.msg.clone())
            } else {
                Action::Listen
            }
        }
        fn transmit_probability(&self, _round: Round) -> f64 {
            0.3
        }
    }
    let factory: ProcessFactory = Arc::new(|ctx: &ProcessContext| {
        Box::new(Chatter {
            msg: Message::plain(ctx.id, MessageKind::new(7), 0),
        }) as Box<dyn Process>
    });
    let scenario = Scenario::on(TopologySpec::DualClique { n: 12 })
        .custom_algorithm("chatter", factory)
        .custom_adversary("all-links", || Box::new(StaticLinks::all()))
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(9)
        .max_rounds(400)
        .build()
        .expect("custom scenario builds");
    assert_modes_agree("chatter × all-links × global-from(0)", &scenario);
}
