//! Integration tests for the `Scenario` API: serde round trips across all
//! three adversary capability classes, fixed-seed determinism, and
//! parallel/sequential runner equivalence.

use dradio::prelude::*;

/// One representative scenario per adversary capability class.
fn class_representatives() -> Vec<(&'static str, Scenario)> {
    let build = |algorithm: GlobalAlgorithm, adversary: AdversarySpec, seed: u64| {
        Scenario::on(TopologySpec::DualClique { n: 24 })
            .algorithm(algorithm)
            .adversary(adversary)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(30_000)
            .build()
            .expect("valid scenario")
    };
    vec![
        (
            "oblivious",
            build(GlobalAlgorithm::Permuted, AdversarySpec::Iid { p: 0.5 }, 21),
        ),
        (
            "online-adaptive",
            build(
                GlobalAlgorithm::Permuted,
                AdversarySpec::DenseSparse {
                    density_factor: None,
                },
                22,
            ),
        ),
        (
            "offline-adaptive",
            build(GlobalAlgorithm::RoundRobin, AdversarySpec::Omniscient, 23),
        ),
    ]
}

#[test]
fn one_scenario_per_adversary_class_round_trips_through_json() {
    for (class, scenario) in class_representatives() {
        let json = serde_json::to_string(scenario.spec())
            .unwrap_or_else(|e| panic!("{class}: serialize failed: {e}"));
        let spec: ScenarioSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{class}: deserialize failed: {e}"));
        assert_eq!(
            &spec,
            scenario.spec(),
            "{class}: spec changed across the round trip"
        );

        // The rebuilt scenario reproduces the original execution exactly.
        let rebuilt = spec
            .build()
            .unwrap_or_else(|e| panic!("{class}: rebuild failed: {e}"));
        let original = scenario.run();
        let replayed = rebuilt.run();
        assert_eq!(
            original.history, replayed.history,
            "{class}: histories diverged"
        );
        assert_eq!(
            original.metrics, replayed.metrics,
            "{class}: metrics diverged"
        );
    }
}

#[test]
fn fixed_seed_executions_are_deterministic() {
    for (class, scenario) in class_representatives() {
        let a = scenario.run();
        let b = scenario.run();
        assert_eq!(
            a.history, b.history,
            "{class}: same seed, different history"
        );
        assert_eq!(
            a.metrics, b.metrics,
            "{class}: same seed, different metrics"
        );
        // A different seed diverges (the RNG actually matters) — except for
        // deterministic algorithm/adversary pairs, so only check the
        // randomized oblivious representative.
        if class == "oblivious" {
            let c = scenario.run_with_seed(scenario.seed() + 1);
            assert_ne!(
                a.history, c.history,
                "{class}: different seeds, same history"
            );
        }
    }
}

#[test]
fn parallel_runner_equals_sequential_runner() {
    for (class, scenario) in class_representatives() {
        let runner = ScenarioRunner::new(&scenario);
        let trials = 6;
        let parallel = runner.run_trials(trials).expect("trials > 0");
        let sequential = runner.sequential().run_trials(trials).expect("trials > 0");
        assert_eq!(
            parallel, sequential,
            "{class}: parallel and sequential measurements diverged"
        );
        // Trial-level outcomes (seeds, costs, order) agree too.
        assert_eq!(
            runner.collect_trials(trials).expect("trials > 0"),
            runner
                .sequential()
                .collect_trials(trials)
                .expect("trials > 0"),
            "{class}: trial outcomes diverged"
        );
    }
}

#[test]
fn zero_trials_is_an_explicit_error() {
    let (_, scenario) = class_representatives().remove(0);
    let err = scenario
        .run_trials(0)
        .expect_err("zero trials must be rejected");
    assert!(
        err.to_string().contains("at least one trial"),
        "unexpected message: {err}"
    );
}

#[test]
fn measurements_match_single_runs_per_trial_seed() {
    // The runner's Measurement is exactly the aggregation of per-trial
    // single runs with the derived seeds — no hidden state.
    let (_, scenario) = class_representatives().remove(0);
    let runner = ScenarioRunner::new(&scenario);
    let trials = runner.collect_trials(4).expect("trials > 0");
    for trial in trials {
        let outcome = scenario.run_with_seed(trial.seed);
        assert_eq!(outcome.cost(), trial.cost());
        assert_eq!(outcome.completed, trial.completed());
        assert_eq!(outcome.metrics.collisions, trial.collisions());
        // The full typed metrics agree too (outcomes carry scalars only).
        assert_eq!(outcome.trial_metrics().without_curve(), trial.metrics);
    }
}

#[test]
fn stored_spec_files_build_without_the_original_builder() {
    // A spec written by hand (or by an earlier run) is enough to reconstruct
    // the whole simulation — the "scenario as a value" contract.
    let json = r#"{
        "topology": {"DualClique": {"n": 16}},
        "algorithm": {"Global": "Permuted"},
        "adversary": {"Iid": {"p": 0.5}},
        "problem": {"GlobalFrom": 0},
        "seed": 5
    }"#;
    let spec: ScenarioSpec = serde_json::from_str(json).expect("hand-written spec parses");
    let scenario = spec.build().expect("hand-written spec builds");
    let outcome = scenario.run();
    assert!(outcome.completed);
    assert!(scenario.verify(&outcome.history));
}
