//! Integration tests for the sparse CSR graph backend: forcing a backend is
//! purely a memory/layout decision, so dense and CSR runs of the same
//! scenario must produce identical trial outcomes and byte-identical
//! serialized measurements — across every registered declarative topology
//! family, on oblivious and adaptive adversaries, on the scalar and the
//! bit-sliced batch paths, and through the campaign cell executor.

use dradio::prelude::*;
use proptest::prelude::*;

/// One scenario per registered declarative topology family ([`TopologySpec`]
/// minus the runtime-attached `Custom`), with an algorithm and problem that
/// fit the family.
fn registry() -> Vec<(TopologySpec, AlgorithmSpec, ProblemSpec)> {
    let global: AlgorithmSpec = GlobalAlgorithm::Permuted.into();
    let local: AlgorithmSpec = LocalAlgorithm::StaticDecay.into();
    let from0 = ProblemSpec::GlobalFrom(0);
    vec![
        (
            TopologySpec::Clique { n: 10 },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::DualClique { n: 12 },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::DualCliqueWithBridge {
                n: 12,
                t_a: 2,
                t_b: 8,
            },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::Bracelet { k: 2 },
            local.clone(),
            ProblemSpec::LocalHeadsA,
        ),
        (
            TopologySpec::BraceletWithClasp { k: 2, t: 1 },
            local.clone(),
            ProblemSpec::LocalHeadsA,
        ),
        (TopologySpec::Line { n: 9 }, global.clone(), from0.clone()),
        (TopologySpec::Ring { n: 9 }, global.clone(), from0.clone()),
        (TopologySpec::Star { n: 9 }, global.clone(), from0.clone()),
        (
            TopologySpec::LineOfCliques {
                cliques: 3,
                clique_size: 4,
            },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::Grid { cols: 4, rows: 5 },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::Torus { cols: 4, rows: 4 },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::BalancedTree {
                branching: 2,
                depth: 3,
            },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::RandomGeometric {
                n: 20,
                side: 2.0,
                r: 1.5,
                seed: 5,
            },
            local.clone(),
            ProblemSpec::LocalRandom { count: 4, seed: 6 },
        ),
        (
            TopologySpec::GridGeometric {
                cols: 4,
                rows: 4,
                spacing: 1.0,
                r: 1.5,
            },
            local,
            ProblemSpec::LocalRandom { count: 4, seed: 6 },
        ),
        (
            TopologySpec::ErdosRenyiDual {
                n: 14,
                p_reliable: 0.4,
                p_dynamic: 0.3,
                seed: 3,
            },
            global.clone(),
            from0.clone(),
        ),
        (
            TopologySpec::SparseErdosRenyi {
                n: 40,
                p: 0.2,
                seed: 7,
            },
            global,
            from0,
        ),
    ]
}

/// The adversary classes every backend must agree under: oblivious static,
/// oblivious randomized, and adaptive (which also exercises the dynamic
/// round-adjacency scratch path).
fn adversaries() -> Vec<(&'static str, AdversarySpec)> {
    vec![
        ("static-none", AdversarySpec::StaticNone),
        ("static-all", AdversarySpec::StaticAll),
        ("iid", AdversarySpec::Iid { p: 0.5 }),
        ("greedy-collision", AdversarySpec::GreedyCollision),
    ]
}

fn build(
    topology: &TopologySpec,
    algorithm: &AlgorithmSpec,
    adversary: &AdversarySpec,
    problem: &ProblemSpec,
    backend: BackendChoice,
) -> Scenario {
    Scenario::on(topology.clone())
        .algorithm(algorithm.clone())
        .adversary(adversary.clone())
        .problem(problem.clone())
        .seed(21)
        .max_rounds(300)
        .backend(backend)
        .build()
        .expect("registry scenarios build under every backend")
}

#[test]
fn every_registered_topology_and_adversary_agrees_across_backends() {
    for (topology, algorithm, problem) in registry() {
        // The backend knob really converts the storage.
        let dense_built = topology
            .build_with_backend(BackendChoice::Dense)
            .expect("registry topologies build");
        assert_eq!(dense_built.dual.graph_backend(), GraphBackend::Dense);
        let csr_built = topology
            .build_with_backend(BackendChoice::Csr)
            .expect("registry topologies build");
        assert_eq!(csr_built.dual.graph_backend(), GraphBackend::Csr);

        for (name, adversary) in adversaries() {
            let label = format!("{}/{name}", topology.label());
            let dense = build(
                &topology,
                &algorithm,
                &adversary,
                &problem,
                BackendChoice::Dense,
            );
            let csr = build(
                &topology,
                &algorithm,
                &adversary,
                &problem,
                BackendChoice::Csr,
            );

            // Trial-for-trial outcome equality on the scalar path...
            let dense_runner = ScenarioRunner::new(&dense).sequential();
            let csr_runner = ScenarioRunner::new(&csr).sequential();
            assert_eq!(
                dense_runner.collect_trials(4).unwrap(),
                csr_runner.collect_trials(4).unwrap(),
                "{label}: scalar outcomes diverged across backends"
            );

            // ...byte-identical serialized measurements...
            let dense_m = dense_runner.run_trials(4).unwrap();
            let csr_m = csr_runner.run_trials(4).unwrap();
            assert_eq!(dense_m, csr_m, "{label}: measurements diverged");
            assert_eq!(
                serde_json::to_string(&dense_m).unwrap(),
                serde_json::to_string(&csr_m).unwrap(),
                "{label}: measurement bytes diverged across backends"
            );

            // ...and the batch path wherever it engages (oblivious
            // adversaries): CSR-batched must match dense-scalar exactly.
            let csr_batched = ScenarioRunner::new(&csr).sequential().batch(true);
            if csr_batched.uses_batch() {
                assert_eq!(
                    dense_runner.collect_trials(4).unwrap(),
                    csr_batched.collect_trials(4).unwrap(),
                    "{label}: CSR batch diverged from dense scalar"
                );
            }
        }
    }
}

#[test]
fn bracelet_attack_agrees_across_backends() {
    // The one adversary bound to a single topology family.
    let topology = TopologySpec::Bracelet { k: 3 };
    let algorithm: AlgorithmSpec = LocalAlgorithm::StaticDecay.into();
    let adversary = AdversarySpec::BraceletAttack;
    let problem = ProblemSpec::LocalHeadsA;
    let dense = build(
        &topology,
        &algorithm,
        &adversary,
        &problem,
        BackendChoice::Dense,
    );
    let csr = build(
        &topology,
        &algorithm,
        &adversary,
        &problem,
        BackendChoice::Csr,
    );
    assert_eq!(
        ScenarioRunner::new(&dense)
            .sequential()
            .collect_trials(6)
            .unwrap(),
        ScenarioRunner::new(&csr)
            .sequential()
            .collect_trials(6)
            .unwrap(),
    );
}

#[test]
fn campaign_cells_store_identical_bytes_under_every_backend() {
    use dradio::campaign::{execute_cell, execute_cell_batched};

    let scenario = ScenarioSpec {
        topology: TopologySpec::Grid { cols: 6, rows: 5 },
        algorithm: GlobalAlgorithm::Permuted.into(),
        adversary: AdversarySpec::Iid { p: 0.5 },
        problem: ProblemSpec::GlobalFrom(0),
        seed: 9,
        max_rounds: Some(400),
        collision_detection: false,
    };
    let cell = |backend| CellSpec {
        scenario: scenario.clone(),
        trials: TrialPolicy::Fixed(3),
        record_mode: RecordMode::None,
        curve: false,
        batch: false,
        backend,
    };

    let auto = execute_cell(&cell(BackendChoice::Auto), false).unwrap();
    let dense = execute_cell(&cell(BackendChoice::Dense), false).unwrap();
    let csr = execute_cell(&cell(BackendChoice::Csr), false).unwrap();
    let csr_batched = execute_cell_batched(&cell(BackendChoice::Csr), false, true).unwrap();

    // Same measurement (and measurement bytes), same identity key: a forced
    // backend resumes, merges, and dedups against auto-built stores.
    for record in [&dense, &csr, &csr_batched] {
        assert_eq!(record.key, auto.key);
        assert_eq!(record.measurement, auto.measurement);
        assert_eq!(
            serde_json::to_string(&record.measurement).unwrap(),
            serde_json::to_string(&auto.measurement).unwrap(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged degrees: sparse Erdős–Rényi networks have wildly uneven rows
    /// (including isolated nodes), so CSR row walks, scratch sizing, and the
    /// word algebra all face non-uniform shapes. Outcomes must still match
    /// the dense backend trial for trial, scalar and batched.
    #[test]
    fn ragged_degree_networks_agree_across_backends(
        n in 8usize..48,
        p in 0.05f64..0.6,
        seed in 0u64..200,
        trials in 1usize..40,
    ) {
        let topology = TopologySpec::SparseErdosRenyi { n, p, seed };
        let algorithm: AlgorithmSpec = GlobalAlgorithm::Permuted.into();
        let adversary = AdversarySpec::Iid { p: 0.5 };
        let problem = ProblemSpec::GlobalFrom(0);
        let dense = build(&topology, &algorithm, &adversary, &problem, BackendChoice::Dense);
        let csr = build(&topology, &algorithm, &adversary, &problem, BackendChoice::Csr);
        let dense_runner = ScenarioRunner::new(&dense).sequential();
        let csr_runner = ScenarioRunner::new(&csr).sequential();
        let expected = dense_runner.collect_trials(trials).unwrap();
        prop_assert_eq!(&expected, &csr_runner.collect_trials(trials).unwrap());
        // Ragged trial counts over ragged rows on the batch path too.
        let batched = csr_runner.batch(true);
        prop_assert!(batched.uses_batch());
        prop_assert_eq!(&expected, &batched.collect_trials(trials).unwrap());
    }

    /// Star graphs are the extreme ragged shape — one hub of degree n-1,
    /// n-1 leaves of degree 1 — and grids exercise the streamed CSR builder.
    #[test]
    fn extreme_degree_skew_agrees_across_backends(
        n in 4usize..32,
        seed in 0u64..100,
    ) {
        for topology in [
            TopologySpec::Star { n },
            TopologySpec::Grid { cols: n, rows: 3 },
        ] {
            let algorithm: AlgorithmSpec = GlobalAlgorithm::Permuted.into();
            let adversary = AdversarySpec::Iid { p: 0.5 };
            let problem = ProblemSpec::GlobalFrom(0);
            let dense = Scenario::on(topology.clone())
                .algorithm(algorithm.clone())
                .adversary(adversary.clone())
                .problem(problem.clone())
                .seed(seed)
                .max_rounds(200)
                .backend(BackendChoice::Dense)
                .build()
                .unwrap();
            let csr = Scenario::on(topology)
                .algorithm(algorithm)
                .adversary(adversary)
                .problem(problem)
                .seed(seed)
                .max_rounds(200)
                .backend(BackendChoice::Csr)
                .build()
                .unwrap();
            prop_assert_eq!(
                ScenarioRunner::new(&dense).sequential().collect_trials(5).unwrap(),
                ScenarioRunner::new(&csr).sequential().collect_trials(5).unwrap()
            );
        }
    }
}
